//! Planned-vs-unplanned characterization of the join compiler (C-F13):
//! runs join-heavy workloads with the plan compiler disabled (the greedy
//! per-round pipeline) and enabled (compiled adorned plans + composite
//! bound-pattern indexes), asserts the two modes produce bit-identical
//! results, and writes timings plus probe counters to `BENCH_core.json`
//! (override the path with `BENCH_CORE_OUT`).
//!
//! Workloads:
//!
//! * `transitive_closure` — one recursive SCC over a chain graph; the
//!   semi-naive delta occurrence is the pinned plan head, so every
//!   differential round probes the edge relation on its bound column;
//! * `same_generation` — the classic two-sided recursion over a balanced
//!   tree (`up`/`flat`/`down`), probing both directions per round;
//! * `wide_conjunct` — a four-literal chain `v(X) :- a(X), b(X,Y),
//!   c(Y,Z), d(Z)` with asymmetric fanout: the planner's static order
//!   (selective filters first, fewest free variables on ties) enumerates
//!   64 seeds, while the greedy size tie-break starts at the small
//!   high-fanout end and explodes the frontier;
//! * `event_tower` — a tower of wide-conjunct views driven through the
//!   incremental upward engine, exercising the per-(rule, literal)
//!   breaking-event plans of the deletion path.
//!
//! Run with: `cargo run --release -p dduf-bench --bin join_plan`

use dduf_bench::{random_toggle_txn, time_us_best};
use dduf_core::testkit::chain_tc_db;
use dduf_core::upward::{self, Engine};
use dduf_datalog::eval::{materialize_with_threads, plan, Strategy};
use dduf_datalog::parser::parse_database;
use dduf_datalog::pretty;
use dduf_datalog::storage::database::Database;
use std::fmt::Write as _;

/// Counters of one traced run, summed over the evaluation phases.
#[derive(Clone, Copy, Default)]
struct Counters {
    probes: u64,
    indexed_probes: u64,
    scan_probes: u64,
    plans: u64,
    indexes: u64,
}

struct Mode {
    mean_us: f64,
    counters: Counters,
}

struct Workload {
    name: &'static str,
    param: String,
    unplanned: Mode,
    planned: Mode,
}

impl Workload {
    /// Runs `f` in both planner modes, asserting the returned fingerprint
    /// is bit-identical, and collecting wall time (untraced) plus probe
    /// counters (one traced run per mode). Timing blocks alternate
    /// between the modes and each mode keeps its fastest block: OS noise
    /// only ever slows a block down, and interleaving makes slow drift
    /// (thermal ramps, background load) hit both modes alike instead of
    /// whichever happened to be measured second.
    fn run(
        name: &'static str,
        param: String,
        iters: usize,
        mut f: impl FnMut() -> String,
    ) -> Workload {
        let mut counters_for = |enabled: bool| {
            plan::with_planning(enabled, || {
                let (fp, report) = dduf_obs::capture(&mut f);
                let counters = Counters {
                    probes: report.total("eval.scc", "probes")
                        + report.total("upward.pred", "probes"),
                    indexed_probes: report.total("eval.scc", "indexed_probes")
                        + report.total("upward.pred", "indexed_probes"),
                    scan_probes: report.total("eval.scc", "scan_probes")
                        + report.total("upward.pred", "scan_probes"),
                    plans: report.total("plan.compile", "compiled"),
                    indexes: report.total("index.build", "composite_built"),
                };
                (fp, counters)
            })
        };
        let (base_fp, unplanned_counters) = counters_for(false);
        let (plan_fp, planned_counters) = counters_for(true);
        assert_eq!(
            base_fp, plan_fp,
            "{name}: planned result differs from unplanned"
        );
        let (mut best_unplanned, mut best_planned) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..8 {
            let t = plan::with_planning(false, || time_us_best(1, iters, &mut f));
            best_unplanned = best_unplanned.min(t);
            let t = plan::with_planning(true, || time_us_best(1, iters, &mut f));
            best_planned = best_planned.min(t);
        }
        Workload {
            name,
            param,
            unplanned: Mode {
                mean_us: best_unplanned,
                counters: unplanned_counters,
            },
            planned: Mode {
                mean_us: best_planned,
                counters: planned_counters,
            },
        }
    }

    fn speedup(&self) -> f64 {
        self.unplanned.mean_us / self.planned.mean_us
    }
}

/// Same-generation over a balanced binary tree of `depth` levels:
/// `up(child, parent)`, `down(parent, child)`, `flat(root, root)`.
fn same_generation_db(depth: u32) -> Database {
    let mut src = String::from(
        "sg(X, Y) :- flat(X, Y).
         sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).
         flat(n0_0, n0_0).\n",
    );
    for lvl in 1..depth {
        for i in 0..(1u64 << lvl) {
            let parent = i / 2;
            let p = lvl - 1;
            let _ = writeln!(src, "up(n{lvl}_{i}, n{p}_{parent}).");
            let _ = writeln!(src, "down(n{p}_{parent}, n{lvl}_{i}).");
        }
    }
    parse_database(&src).expect("generated tree parses")
}

/// The asymmetric wide-conjunct chain: 2000 `b` pairs fan 25-to-1 onto 80
/// `c` pairs fanning 4-to-1 onto 20 `d` values; only 64 `X` pass `a`.
/// Enumerating `a` first touches ~250 bindings; starting from `d` (the
/// smallest relation, the greedy tie-break) walks the fanout backwards
/// through thousands.
fn wide_conjunct_db() -> Database {
    let mut src = String::from("v(X) :- a(X), b(X, Y), c(Y, Z), d(Z).\n");
    for x in 0..64 {
        let _ = writeln!(src, "a({x}).");
    }
    for x in 0..2000 {
        let _ = writeln!(src, "b({x}, {}).", x / 25);
    }
    for y in 0..80 {
        let _ = writeln!(src, "c({y}, {}).", y / 4);
    }
    for z in 0..20 {
        let _ = writeln!(src, "d({z}).");
    }
    parse_database(&src).expect("generated chain parses")
}

/// A tower of wide-conjunct views: each level joins the previous one
/// through its own asymmetric `b/c/d` chain, so every transition rule the
/// upward engine compiles has a wide body.
fn event_tower_db(levels: usize) -> Database {
    let mut src = String::new();
    for l in 1..=levels {
        let prev = if l == 1 {
            "a(X)".to_string()
        } else {
            format!("v{}(X)", l - 1)
        };
        let _ = writeln!(src, "v{l}(X) :- {prev}, b{l}(X, Y), c{l}(Y, Z), d{l}(Z).");
        for x in 0..3000 {
            let _ = writeln!(src, "b{l}({x}, {}).", x / 30);
        }
        for y in 0..100 {
            let _ = writeln!(src, "c{l}({y}, {}).", y / 5);
        }
        for z in 0..20 {
            let _ = writeln!(src, "d{l}({z}).");
        }
    }
    for x in 0..256 {
        let _ = writeln!(src, "a({x}).");
    }
    parse_database(&src).expect("generated tower parses")
}

fn json_mode(m: &Mode) -> String {
    format!(
        "{{\"mean_us\": {:.1}, \"probes\": {}, \"indexed_probes\": {}, \"scan_probes\": {}, \"plans_compiled\": {}, \"indexes_built\": {}}}",
        m.mean_us,
        m.counters.probes,
        m.counters.indexed_probes,
        m.counters.scan_probes,
        m.counters.plans,
        m.counters.indexes,
    )
}

fn main() {
    let mut workloads = Vec::new();

    let chain = chain_tc_db(192);
    workloads.push(Workload::run(
        "transitive_closure",
        "n=192".into(),
        8,
        move || pretty::derived(&materialize_with_threads(&chain, Strategy::SemiNaive, 1).unwrap()),
    ));

    let sg = same_generation_db(7);
    workloads.push(Workload::run(
        "same_generation",
        "depth=7,branch=2".into(),
        8,
        move || pretty::derived(&materialize_with_threads(&sg, Strategy::SemiNaive, 1).unwrap()),
    ));

    let wide = wide_conjunct_db();
    workloads.push(Workload::run(
        "wide_conjunct",
        "b=2000,c=80,d=20,a=64".into(),
        20,
        move || pretty::derived(&materialize_with_threads(&wide, Strategy::SemiNaive, 1).unwrap()),
    ));

    let tower = event_tower_db(5);
    let old = materialize_with_threads(&tower, Strategy::SemiNaive, 1).unwrap();
    let txn = random_toggle_txn(&tower, 48, 17);
    workloads.push(Workload::run(
        "event_tower",
        "levels=5,toggles=48".into(),
        10,
        move || {
            let res = upward::interpret_with_threads(&tower, &old, &txn, Engine::Incremental, 1)
                .expect("upward");
            format!("{:?}", res.derived)
        },
    ));

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"join_plan\",");
    let _ = writeln!(json, "  \"identical\": true,");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"param\": \"{}\",", w.param);
        let _ = writeln!(json, "      \"unplanned\": {},", json_mode(&w.unplanned));
        let _ = writeln!(json, "      \"planned\": {},", json_mode(&w.planned));
        let _ = writeln!(json, "      \"speedup\": {:.2}", w.speedup());
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < workloads.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    let out = std::env::var("BENCH_CORE_OUT").unwrap_or_else(|_| "BENCH_core.json".into());
    std::fs::write(&out, &json).expect("write BENCH_core.json");

    println!("workload,param,mode,mean_us,probes,indexed_probes,scan_probes,speedup");
    for w in &workloads {
        for (mode, m) in [("unplanned", &w.unplanned), ("planned", &w.planned)] {
            println!(
                "{},{},{},{:.1},{},{},{},{:.2}",
                w.name,
                w.param,
                mode,
                m.mean_us,
                m.counters.probes,
                m.counters.indexed_probes,
                m.counters.scan_probes,
                w.speedup()
            );
        }
    }
    eprintln!("wrote {out}");
}
