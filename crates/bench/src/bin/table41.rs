//! P-T4.1 — Operational reproduction of **Table 4.1** of the paper.
//!
//! Prints the classification matrix and then *executes* every cell on the
//! paper's employment database (augmented with a monitored condition),
//! demonstrating that each problem is solvable through the framework's
//! single pair of interpretations.
//!
//! Run with: `cargo run -p dduf-bench --bin table41`

use dduf_core::downward::Request;
use dduf_core::matview::MaterializedViewStore;
use dduf_core::problems::condition_prevention::PreventKinds;
use dduf_core::problems::ic_checking::CheckOutcome;
use dduf_core::problems::ic_maintenance::MaintenanceOutcome;
use dduf_core::problems::repair::RepairOutcome;
use dduf_core::problems::TABLE_4_1;
use dduf_core::processor::UpdateProcessor;
use dduf_core::testkit;
use dduf_datalog::ast::{Atom, Const, Pred};
use dduf_datalog::parser::parse_database;
use dduf_datalog::schema::DerivedRole;
use dduf_events::event::{EventAtom, EventKind};

fn role_name(r: DerivedRole) -> &'static str {
    match r {
        DerivedRole::View => "View",
        DerivedRole::Ic => "Ic",
        DerivedRole::Cond => "Cond",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Table 4.1 — A common framework for classifying deductive database");
    println!("updating problems (Teniente & Urpi, ICDE 1995)\n");
    println!(
        "{:<9} {:<12} {:<5} {:<55} api",
        "direction", "pattern", "role", "problem"
    );
    println!("{}", "-".repeat(130));
    for cell in TABLE_4_1 {
        println!(
            "{:<9} {:<12} {:<5} {:<55} {}",
            cell.direction.to_string(),
            cell.pattern.to_string(),
            role_name(cell.role),
            cell.problem,
            cell.api
        );
    }

    println!("\nExecuting every cell on the employment database:\n");
    // View + Cond + Ic roles in one schema.
    let proc = UpdateProcessor::new(testkit::employment_db_with_condition())?;
    let unemp = Pred::new("unemp", 1);
    let needy = Pred::new("needy", 1);
    let dolors = || Atom::ground("unemp", vec![Const::sym("dolors")]);

    let demo = |cell_idx: usize, outcome: String| {
        let cell = &TABLE_4_1[cell_idx];
        println!(
            "[{:>2}] {:<8} {:<11} {:<5} {:<45} -> {}",
            cell_idx + 1,
            cell.direction.to_string(),
            cell.pattern.to_string(),
            role_name(cell.role),
            cell.problem,
            outcome
        );
    };

    // --- Upward / View: materialized view maintenance (ins + del) ---
    let mut store =
        MaterializedViewStore::materialize(proc.database().program(), proc.interpretation());
    let txn = proc.transaction("+la(maria).")?;
    let rep = proc.maintain_views(&txn, &mut store)?;
    demo(
        0,
        format!("applied +{} tuples to stored unemp", rep.delta.insertions),
    );
    let mut store2 =
        MaterializedViewStore::materialize(proc.database().program(), proc.interpretation());
    let txn = proc.transaction("+works(dolors).")?;
    let rep = proc.maintain_views(&txn, &mut store2)?;
    demo(
        1,
        format!("applied -{} tuples to stored unemp", rep.delta.deletions),
    );

    // --- Upward / Ic: checking (violation + restoration) ---
    let txn = proc.transaction("-u_benefit(dolors).")?;
    let out = proc.check_integrity(&txn)?;
    demo(
        2,
        match out {
            CheckOutcome::Violated(ref v) => {
                format!("T violates {:?} (rejected)", v[0].to_string())
            }
            ref other => format!("{other:?}"),
        },
    );
    let inconsistent = UpdateProcessor::new(parse_database(
        "la(dolors).
         unemp(X) :- la(X), not works(X).
         :- unemp(X), not u_benefit(X).",
    )?)?;
    let fix = inconsistent.transaction("+u_benefit(dolors).")?;
    demo(3, format!("{:?}", inconsistent.restores_consistency(&fix)?));

    // --- Upward / Cond: condition monitoring ---
    let txn = proc.transaction("+la(maria).")?;
    let ch = proc.monitor_conditions(&txn)?;
    demo(
        4,
        format!(
            "activated: {:?}",
            ch.activated[&needy][0].to_atom(needy).to_string()
        ),
    );
    // For deactivation, start from a state where the condition is active:
    // dolors needy (in labour age, no work, no benefit).
    let active = UpdateProcessor::new(parse_database(
        "#cond needy/1.
         la(dolors).
         needy(X) :- la(X), not works(X), not u_benefit(X).",
    )?)?;
    let txn = active.transaction("+u_benefit(dolors).")?;
    let ch = active.monitor_conditions(&txn)?;
    demo(
        5,
        format!("deactivated: {}", ch.deactivated[&needy][0].to_atom(needy)),
    );

    // --- Downward / View: view updating + validation ---
    let req = Request::new().achieve(
        EventKind::Ins,
        Atom::ground("unemp", vec![Const::sym("maria")]),
    );
    let res = proc.translate_view_update(&req)?;
    demo(
        6,
        format!(
            "{} translations, e.g. {}",
            res.alternatives.len(),
            res.alternatives[0]
        ),
    );
    let req = Request::new().achieve(EventKind::Del, dolors());
    let res = proc.translate_view_update(&req)?;
    demo(7, format!("{} translations", res.alternatives.len()));

    // --- Downward / View: preventing side effects ---
    let txn = proc.transaction("+la(maria).")?;
    let res = proc.prevent_side_effects(
        &txn,
        &[EventAtom::ins(Atom::ground(
            "unemp",
            vec![Const::sym("maria")],
        ))],
    )?;
    demo(
        8,
        format!("resulting transaction: {}", res.alternatives[0].to_do),
    );
    let txn = proc.transaction("+works(dolors).")?;
    let res = proc.prevent_side_effects(&txn, &[EventAtom::del(dolors())])?;
    demo(
        9,
        format!(
            "{} resulting transactions (deletion unavoidable)",
            res.alternatives.len()
        ),
    );

    // --- Downward / Ic: ensuring satisfaction, repair/satisfiability ---
    let ways = proc.violating_transactions()?.expect("has constraints");
    demo(
        10,
        format!(
            "{} ways to reach inconsistency found",
            ways.alternatives.len()
        ),
    );
    let RepairOutcome::Repairs(reps) = inconsistent.repairs()? else {
        unreachable!("inconsistent db");
    };
    demo(
        11,
        format!(
            "{} repairs, e.g. {}",
            reps.alternatives.len(),
            reps.alternatives[0]
        ),
    );

    // --- Downward / Ic: maintenance + maintaining inconsistency ---
    let txn = proc.transaction("+la(maria).")?;
    let MaintenanceOutcome::Resulting(res) = proc.maintain_integrity(&txn)? else {
        unreachable!()
    };
    demo(
        12,
        format!(
            "{} integrity-preserving resulting transactions",
            res.alternatives.len()
        ),
    );
    let txn = inconsistent.transaction("+u_benefit(dolors).")?;
    let out = inconsistent.maintain_inconsistency(&txn)?;
    demo(
        13,
        match out {
            MaintenanceOutcome::Resulting(r) => {
                format!(
                    "{} inconsistency-preserving transactions",
                    r.alternatives.len()
                )
            }
            other => format!("{other:?}"),
        },
    );

    // --- Downward / Cond: enforcing + validation ---
    let res = proc.enforce_condition(
        EventKind::Ins,
        Atom::ground("needy", vec![Const::sym("maria")]),
    )?;
    demo(
        14,
        format!("{} activating transactions", res.alternatives.len()),
    );
    let w = active.validate_condition(needy, EventKind::Del)?;
    demo(
        15,
        match w {
            Some(witness) => format!(
                "witness: del {} via {}",
                witness.tuple.to_atom(needy),
                witness.alternative.to_do
            ),
            None => "condition can never deactivate".to_string(),
        },
    );

    // --- Downward / Cond: preventing activation/deactivation ---
    let txn = proc.transaction("+la(maria).")?;
    let res = proc.prevent_condition_activation(&txn, needy, PreventKinds::Activation)?;
    demo(
        16,
        format!("{} safe resulting transactions", res.alternatives.len()),
    );
    let txn = proc.transaction("+works(dolors).")?;
    let res = proc.prevent_condition_activation(&txn, unemp, PreventKinds::Deactivation)?;
    demo(
        17,
        format!(
            "{} resulting transactions (deactivation unavoidable)",
            res.alternatives.len()
        ),
    );

    println!("\nall 18 cells executed through the two interpretations.");
    Ok(())
}
