//! CRC-32 (IEEE 802.3: reflected, polynomial `0xEDB88320`), hand-rolled
//! in ~30 lines for the same reason `dduf_core::rng` vendors SplitMix64:
//! the workspace must build fully offline, so the `crc32fast` crate is
//! deliberately not a dependency. The table is computed at compile time;
//! the byte-at-a-time loop is ample for journal records of a few hundred
//! bytes.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// The CRC-32 checksum of `data` (IEEE polynomial, as in zip/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The standard check vectors every CRC-32 implementation must match.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    /// Any single-bit flip changes the checksum (the property the journal
    /// relies on to detect mid-log corruption).
    #[test]
    fn single_bit_flips_detected() {
        let base = b"+works(dolors). -u_benefit(dolors).".to_vec();
        let clean = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}.{bit}");
            }
        }
    }
}
