//! Errors of the persistence subsystem.
//!
//! The distinction that matters for recovery (DESIGN.md §9):
//!
//! * a **torn tail** — the file ends in the middle of the final record —
//!   is the expected signature of a crash mid-append. It is *not* an
//!   error: open truncates it and recovers the longest committed prefix.
//! * **mid-log corruption** — a checksum or format violation with intact
//!   bytes after it — means storage was damaged. Silently truncating
//!   would discard acknowledged commits, so this is a hard error carrying
//!   the record index and byte offset, rendered as a span-style
//!   diagnostic like the analyzer's.

use std::fmt;

/// Errors raised while journaling, snapshotting, or recovering.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure.
    Io {
        /// The file or directory involved.
        path: String,
        /// What was being attempted (`"create"`, `"append"`, ...).
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The journal is damaged before its final record: a checksum
    /// mismatch, an implausible length prefix, or a payload that is not
    /// the event surface syntax.
    Corrupt {
        /// The journal file.
        path: String,
        /// 0-based index of the damaged record.
        record: usize,
        /// Byte offset of the damaged record's header.
        offset: u64,
        /// What exactly is wrong.
        detail: String,
    },
    /// `Journal::append` refused a payload over the `MAX_RECORD` cap.
    /// Writing it would frame a record every future scan rejects as
    /// corrupt (the `u32` length prefix cannot even represent it), so the
    /// append fails cleanly before any bytes hit disk.
    RecordTooLarge {
        /// The journal file.
        path: String,
        /// Size of the rejected payload.
        bytes: u64,
        /// The cap it exceeds (`journal::MAX_RECORD`).
        max: u32,
    },
    /// The snapshot file is missing its header, fails its checksum, or
    /// does not parse back into a database.
    Snapshot {
        /// The snapshot file.
        path: String,
        /// What exactly is wrong.
        detail: String,
    },
    /// Another process holds the directory's exclusive lock
    /// (`dduf.lock`). Opening would race its journal appends, so the
    /// open is refused instead of silently interleaving.
    Locked {
        /// The lock file another process holds.
        path: String,
    },
    /// The directory does not hold a durable database (no snapshot or no
    /// journal).
    NotADatabase(String),
    /// `init` refused to overwrite an existing durable database.
    AlreadyExists(String),
    /// A journal record re-parsed and re-validated fine but failed to
    /// commit through the upward path during replay.
    Replay {
        /// 0-based index of the record that failed.
        record: usize,
        /// The evaluation error.
        source: dduf_core::Error,
    },
    /// An error from the framework itself (evaluation, validation).
    Core(dduf_core::Error),
}

impl PersistError {
    /// Renders the error in the analyzer's span-diagnostic style:
    /// a headline, a `-->` location line, and `=` notes.
    pub fn render(&self) -> String {
        match self {
            PersistError::Corrupt {
                path,
                record,
                offset,
                detail,
            } => format!(
                "error: journal corrupt: {detail}\n  --> {path}:record {record} (byte {offset})\n  = note: records before record {record} are intact; refusing to truncate \
                 acknowledged commits — repair or restore the journal manually\n"
            ),
            PersistError::Snapshot { path, detail } => {
                format!("error: snapshot unreadable: {detail}\n  --> {path}\n")
            }
            PersistError::Locked { path } => format!(
                "error: database is locked by another process\n  --> {path}\n  = note: a `dduf db open` session or `dduf serve` already owns this \
                 directory; close it first (the lock vanishes with its process)\n"
            ),
            other => format!("error: {other}\n"),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, op, source } => {
                write!(f, "cannot {op} {path}: {source}")
            }
            PersistError::Corrupt {
                path,
                record,
                offset,
                detail,
            } => write!(
                f,
                "journal {path} corrupt at record {record} (byte {offset}): {detail}"
            ),
            PersistError::RecordTooLarge { path, bytes, max } => write!(
                f,
                "record of {bytes} bytes exceeds the {max}-byte journal record cap of {path}; \
                 nothing was written"
            ),
            PersistError::Snapshot { path, detail } => {
                write!(f, "snapshot {path} unreadable: {detail}")
            }
            PersistError::Locked { path } => {
                write!(
                    f,
                    "database is locked by another process (lock file {path})"
                )
            }
            PersistError::NotADatabase(dir) => {
                write!(
                    f,
                    "{dir} is not a durable database (run `dduf db init` first)"
                )
            }
            PersistError::AlreadyExists(dir) => {
                write!(f, "{dir} already holds a durable database")
            }
            PersistError::Replay { record, source } => {
                write!(f, "replay of journal record {record} failed: {source}")
            }
            PersistError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Replay { source, .. } | PersistError::Core(source) => Some(source),
            _ => None,
        }
    }
}

impl From<dduf_core::Error> for PersistError {
    fn from(e: dduf_core::Error) -> PersistError {
        PersistError::Core(e)
    }
}

/// Result alias for the subsystem.
pub type Result<T> = std::result::Result<T, PersistError>;

/// Helper: wrap an `io::Error` with its path and operation.
pub(crate) fn io_err<'a>(
    path: &'a std::path::Path,
    op: &'static str,
) -> impl FnOnce(std::io::Error) -> PersistError + 'a {
    move |source| PersistError::Io {
        path: path.display().to_string(),
        op,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_renders_span_style() {
        let e = PersistError::Corrupt {
            path: "journal.log".into(),
            record: 3,
            offset: 128,
            detail: "checksum mismatch (stored 0xdeadbeef, computed 0x12345678)".into(),
        };
        let r = e.render();
        assert!(r.contains("--> journal.log:record 3 (byte 128)"), "{r}");
        assert!(r.contains("checksum mismatch"), "{r}");
        assert!(e.to_string().contains("record 3"), "{e}");
    }

    #[test]
    fn io_carries_source() {
        use std::error::Error as _;
        let e = io_err(std::path::Path::new("j.log"), "append")(std::io::Error::other("boom"));
        assert!(e.to_string().contains("append"), "{e}");
        assert!(e.source().is_some());
    }
}
