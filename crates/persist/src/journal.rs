//! The append-only event journal.
//!
//! A transaction *is* a set of base-fact events (§3.1), which is exactly
//! the content of a write-ahead log record — so the journal stores each
//! committed transaction in the existing surface syntax (`+p(a). -q(b).`)
//! behind a binary framing that makes crashes detectable:
//!
//! ```text
//! file   := MAGIC record*
//! MAGIC  := "ddufjnl1"                      (8 bytes)
//! record := len:u32le crc:u32le payload     (crc = CRC-32 of payload)
//! ```
//!
//! The payload is UTF-8 text, so `strings journal.log` shows the history
//! and `dduf db log` is a trivial dump — but every record is still
//! length-prefixed and checksummed, giving the two guarantees recovery
//! needs: a crash mid-append leaves a recognizable **torn tail** (the
//! file ends before the final record completes), and any later damage is
//! a **checksum mismatch** at a known record index.

use crate::crc32::crc32;
use crate::error::{io_err, PersistError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The journal file's magic header.
pub const MAGIC: &[u8; 8] = b"ddufjnl1";

/// Bytes of framing before each payload (`u32` length + `u32` CRC).
pub const RECORD_HEADER: usize = 8;

/// Sanity bound on a single record; a length prefix above this is treated
/// as corruption rather than a (physically impossible) giant record.
const MAX_RECORD: u32 = 1 << 30;

/// One decoded journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// 0-based position in the journal.
    pub index: usize,
    /// Byte offset of the record's header in the file.
    pub offset: u64,
    /// The transaction in event surface syntax.
    pub payload: String,
}

/// A torn final record: the file ends before the record completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the torn record starts.
    pub offset: u64,
    /// How many dangling bytes follow that offset.
    pub bytes: u64,
}

/// The result of scanning a journal file.
#[derive(Clone, Debug)]
pub struct Scan {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// Byte offset just past the last intact record — the position appends
    /// (and snapshots) should use.
    pub end: u64,
    /// The torn final record, if the file ends mid-record.
    pub torn: Option<TornTail>,
}

/// Reads and validates a journal file without modifying it.
///
/// An incomplete *final* record is reported as [`Scan::torn`]; anything
/// else that fails validation — checksum mismatch, implausible length,
/// non-UTF-8 payload — is a hard [`PersistError::Corrupt`].
pub fn scan(path: &Path) -> Result<Scan> {
    let data = std::fs::read(path).map_err(io_err(path, "read"))?;
    scan_bytes(path, &data)
}

fn scan_bytes(path: &Path, data: &[u8]) -> Result<Scan> {
    let disp = path.display().to_string();
    if data.len() < MAGIC.len() || &data[..MAGIC.len().min(data.len())] != MAGIC {
        return Err(PersistError::Corrupt {
            path: disp,
            record: 0,
            offset: 0,
            detail: format!(
                "missing magic header {:?}",
                std::str::from_utf8(MAGIC).unwrap()
            ),
        });
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        if pos == data.len() {
            return Ok(Scan {
                records,
                end: pos as u64,
                torn: None,
            });
        }
        let index = records.len();
        let torn = |pos: usize| {
            Ok(Scan {
                records: records.clone(),
                end: pos as u64,
                torn: Some(TornTail {
                    offset: pos as u64,
                    bytes: (data.len() - pos) as u64,
                }),
            })
        };
        if data.len() - pos < RECORD_HEADER {
            return torn(pos);
        }
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let stored = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD {
            return Err(PersistError::Corrupt {
                path: disp,
                record: index,
                offset: pos as u64,
                detail: format!("implausible record length {len}"),
            });
        }
        let body_start = pos + RECORD_HEADER;
        if data.len() - body_start < len as usize {
            return torn(pos);
        }
        let body = &data[body_start..body_start + len as usize];
        let computed = crc32(body);
        if computed != stored {
            return Err(PersistError::Corrupt {
                path: disp,
                record: index,
                offset: pos as u64,
                detail: format!(
                    "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                ),
            });
        }
        let payload = std::str::from_utf8(body)
            .map_err(|_| PersistError::Corrupt {
                path: disp.clone(),
                record: index,
                offset: pos as u64,
                detail: "payload is not valid UTF-8".into(),
            })?
            .to_string();
        records.push(Record {
            index,
            offset: pos as u64,
            payload,
        });
        pos = body_start + len as usize;
    }
}

/// An open journal, positioned for appending after the last intact record.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    end: u64,
}

impl Journal {
    /// Creates a fresh, empty journal (fails if the file exists).
    pub fn create(path: &Path) -> Result<Journal> {
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(io_err(path, "create"))?;
        file.write_all(MAGIC).map_err(io_err(path, "write"))?;
        file.sync_all().map_err(io_err(path, "sync"))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            end: MAGIC.len() as u64,
        })
    }

    /// Validates an existing journal and opens it for appending. A torn
    /// final record is **truncated away** (it was never acknowledged);
    /// mid-log corruption is a hard error. Returns the journal plus the
    /// scan that recovery replays from.
    pub fn open(path: &Path) -> Result<(Journal, Scan)> {
        let scan = scan(path)?;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(io_err(path, "open"))?;
        if scan.torn.is_some() {
            file.set_len(scan.end).map_err(io_err(path, "truncate"))?;
            file.sync_all().map_err(io_err(path, "sync"))?;
        }
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                end: scan.end,
            },
            scan,
        ))
    }

    /// Appends one record and flushes it to stable storage. The commit is
    /// durable — and may be acknowledged — once this returns.
    pub fn append(&mut self, payload: &str) -> Result<u64> {
        let body = payload.as_bytes();
        let mut rec = Vec::with_capacity(RECORD_HEADER + body.len());
        rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(body).to_le_bytes());
        rec.extend_from_slice(body);
        self.file
            .seek(SeekFrom::Start(self.end))
            .map_err(io_err(&self.path, "seek"))?;
        self.file
            .write_all(&rec)
            .map_err(io_err(&self.path, "append"))?;
        self.file.sync_data().map_err(io_err(&self.path, "sync"))?;
        self.end += rec.len() as u64;
        Ok(self.end)
    }

    /// Byte offset just past the last record (where the next one goes).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dduf_journal_{}_{name}.log", std::process::id()))
    }

    #[test]
    fn create_append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        j.append("-q(b). +p(c).").unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[0].payload, "+p(a).");
        assert_eq!(s.records[1].payload, "-q(b). +p(c).");
        assert_eq!(s.records[1].index, 1);
        assert!(s.torn.is_none());
        assert_eq!(s.end, j.end());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_truncated_on_open() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        let keep = j.end();
        j.append("+p(b).").unwrap();
        drop(j);
        // Cut into the middle of the second record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..keep as usize + 5]).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(
            s.torn,
            Some(TornTail {
                offset: keep,
                bytes: 5
            })
        );
        // Open truncates the dangling bytes and can append again.
        let (mut j, s) = Journal::open(&path).unwrap();
        assert_eq!(s.end, keep);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep);
        j.append("+p(c).").unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[1].payload, "+p(c).");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn midlog_corruption_is_hard_error() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        j.append("+p(b).").unwrap();
        drop(j);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte of record 0 (magic + header + 1).
        data[MAGIC.len() + RECORD_HEADER + 1] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        match scan(&path) {
            Err(PersistError::Corrupt { record, detail, .. }) => {
                assert_eq!(record, 0);
                assert!(detail.contains("checksum mismatch"), "{detail}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        assert!(Journal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"not a journal").unwrap();
        assert!(matches!(scan(&path), Err(PersistError::Corrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }
}
