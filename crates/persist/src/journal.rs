//! The append-only event journal.
//!
//! A transaction *is* a set of base-fact events (§3.1), which is exactly
//! the content of a write-ahead log record — so the journal stores each
//! committed transaction in the existing surface syntax (`+p(a). -q(b).`)
//! behind a binary framing that makes crashes detectable:
//!
//! ```text
//! file   := MAGIC record*
//! MAGIC  := "ddufjnl1"                      (8 bytes)
//! record := len:u32le crc:u32le payload     (crc = CRC-32 of payload)
//! ```
//!
//! The payload is UTF-8 text, so `strings journal.log` shows the history
//! and `dduf db log` is a trivial dump — but every record is still
//! length-prefixed and checksummed, giving the two guarantees recovery
//! needs: a crash mid-append leaves a recognizable **torn tail** (the
//! file ends before the final record completes), and any later damage is
//! a **checksum mismatch** at a known record index.

use crate::crc32::crc32;
use crate::error::{io_err, PersistError, Result};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The journal file's magic header.
pub const MAGIC: &[u8; 8] = b"ddufjnl1";

/// Bytes of framing before each payload (`u32` length + `u32` CRC).
pub const RECORD_HEADER: usize = 8;

/// Sanity bound on a single record, enforced symmetrically: [`Journal::append`]
/// rejects larger payloads before any bytes hit disk, and scanning treats a
/// larger length prefix as corruption. It also caps the scanner's per-record
/// buffer, so a journal of any size is verified with bounded memory.
pub const MAX_RECORD: u32 = 1 << 30;

/// One decoded journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// 0-based position in the journal.
    pub index: usize,
    /// Byte offset of the record's header in the file.
    pub offset: u64,
    /// The transaction in event surface syntax.
    pub payload: String,
}

/// A torn final record: the file ends before the record completes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the torn record starts.
    pub offset: u64,
    /// How many dangling bytes follow that offset.
    pub bytes: u64,
}

/// The result of scanning a journal file.
#[derive(Clone, Debug)]
pub struct Scan {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// Byte offset just past the last intact record — the position appends
    /// (and snapshots) should use.
    pub end: u64,
    /// The torn final record, if the file ends mid-record.
    pub torn: Option<TornTail>,
}

/// Everything a streaming scan establishes besides the payloads
/// themselves: see [`scan_records`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanSummary {
    /// Number of intact records visited.
    pub records: usize,
    /// Byte offset just past the last intact record.
    pub end: u64,
    /// The torn final record, if the file ends mid-record.
    pub torn: Option<TornTail>,
}

/// Reads and validates a journal file record-by-record with bounded
/// memory, handing each intact record to `visit` as it is decoded. At
/// most one record body (≤ [`MAX_RECORD`] bytes) is buffered at a time,
/// so a journal of any size can be verified on a small machine.
///
/// An incomplete *final* record is reported via [`ScanSummary::torn`];
/// anything else that fails validation — checksum mismatch, implausible
/// length, non-UTF-8 payload — is a hard [`PersistError::Corrupt`]. An
/// error returned by `visit` aborts the scan.
pub fn scan_records(
    path: &Path,
    visit: &mut dyn FnMut(Record) -> Result<()>,
) -> Result<ScanSummary> {
    let disp = path.display().to_string();
    let file = File::open(path).map_err(io_err(path, "read"))?;
    let file_len = file.metadata().map_err(io_err(path, "read"))?.len();
    let mut reader = BufReader::new(file);

    let mut magic = [0u8; MAGIC.len()];
    let magic_ok = file_len >= MAGIC.len() as u64 && {
        reader
            .read_exact(&mut magic)
            .map_err(io_err(path, "read"))?;
        &magic == MAGIC
    };
    if !magic_ok {
        return Err(PersistError::Corrupt {
            path: disp,
            record: 0,
            offset: 0,
            detail: format!(
                "missing magic header {:?}",
                std::str::from_utf8(MAGIC).unwrap()
            ),
        });
    }

    let mut index = 0usize;
    let mut pos = MAGIC.len() as u64;
    let mut body = Vec::new();
    let record_scan = |records: usize, end: u64| {
        dduf_obs::record(
            "journal.scan",
            "",
            &[
                ("records", records as u64),
                ("bytes", end - MAGIC.len() as u64),
            ],
        );
    };
    loop {
        if pos == file_len {
            record_scan(index, pos);
            return Ok(ScanSummary {
                records: index,
                end: pos,
                torn: None,
            });
        }
        let remaining = file_len - pos;
        let torn = |pos: u64| {
            record_scan(index, pos);
            Ok(ScanSummary {
                records: index,
                end: pos,
                torn: Some(TornTail {
                    offset: pos,
                    bytes: file_len - pos,
                }),
            })
        };
        if remaining < RECORD_HEADER as u64 {
            return torn(pos);
        }
        let mut header = [0u8; RECORD_HEADER];
        reader
            .read_exact(&mut header)
            .map_err(io_err(path, "read"))?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let stored = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_RECORD {
            return Err(PersistError::Corrupt {
                path: disp,
                record: index,
                offset: pos,
                detail: format!("implausible record length {len}"),
            });
        }
        if remaining - (RECORD_HEADER as u64) < len as u64 {
            return torn(pos);
        }
        // Bounded by the MAX_RECORD check above.
        body.resize(len as usize, 0);
        reader.read_exact(&mut body).map_err(io_err(path, "read"))?;
        let computed = crc32(&body);
        if computed != stored {
            return Err(PersistError::Corrupt {
                path: disp,
                record: index,
                offset: pos,
                detail: format!(
                    "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
                ),
            });
        }
        let payload = std::str::from_utf8(&body)
            .map_err(|_| PersistError::Corrupt {
                path: disp.clone(),
                record: index,
                offset: pos,
                detail: "payload is not valid UTF-8".into(),
            })?
            .to_string();
        visit(Record {
            index,
            offset: pos,
            payload,
        })?;
        pos += RECORD_HEADER as u64 + len as u64;
        index += 1;
    }
}

/// Reads and validates a journal file without modifying it, collecting
/// every record. Convenience wrapper over [`scan_records`] for callers
/// (recovery, `dduf db log`) that want the payloads in memory anyway.
pub fn scan(path: &Path) -> Result<Scan> {
    let mut records = Vec::new();
    let summary = scan_records(path, &mut |r| {
        records.push(r);
        Ok(())
    })?;
    Ok(Scan {
        records,
        end: summary.end,
        torn: summary.torn,
    })
}

/// Fault-injection hook for tests and benches: `DDUF_SYNC_DELAY_US`
/// (microseconds) pads every batch append with an artificial sleep
/// between the write and its fsync, simulating a slow durable device.
/// That is exactly the window the pipelined server overlaps — the
/// backpressure e2e uses it to saturate the bounded commit queue, and
/// the fault harness to widen the SIGKILL window. Read once; unset (the
/// production case) costs one branch per batch.
fn sync_delay() -> Option<std::time::Duration> {
    static DELAY: std::sync::OnceLock<Option<std::time::Duration>> = std::sync::OnceLock::new();
    *DELAY.get_or_init(|| {
        std::env::var("DDUF_SYNC_DELAY_US")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&us| us > 0)
            .map(std::time::Duration::from_micros)
    })
}

/// An open journal, positioned for appending after the last intact record.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    end: u64,
}

impl Journal {
    /// Creates a fresh, empty journal (fails if the file exists).
    pub fn create(path: &Path) -> Result<Journal> {
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(io_err(path, "create"))?;
        file.write_all(MAGIC).map_err(io_err(path, "write"))?;
        file.sync_all().map_err(io_err(path, "sync"))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            end: MAGIC.len() as u64,
        })
    }

    /// Validates an existing journal and opens it for appending. A torn
    /// final record is **truncated away** (it was never acknowledged);
    /// mid-log corruption is a hard error. Returns the journal plus the
    /// scan that recovery replays from.
    pub fn open(path: &Path) -> Result<(Journal, Scan)> {
        let scan = scan(path)?;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(io_err(path, "open"))?;
        if scan.torn.is_some() {
            file.set_len(scan.end).map_err(io_err(path, "truncate"))?;
            file.sync_all().map_err(io_err(path, "sync"))?;
        }
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
                end: scan.end,
            },
            scan,
        ))
    }

    /// Appends one record and flushes it to stable storage. The commit is
    /// durable — and may be acknowledged — once this returns.
    ///
    /// Payloads over [`MAX_RECORD`] bytes are rejected **before any bytes
    /// hit disk** with [`PersistError::RecordTooLarge`]: the `u32` length
    /// prefix would otherwise truncate silently, and even an exact prefix
    /// would frame a record every future [`scan`] rejects as corrupt.
    pub fn append(&mut self, payload: &str) -> Result<u64> {
        self.append_batch(std::slice::from_ref(&payload))
    }

    /// Appends a *batch* of records behind **exactly one fsync** — the
    /// group-commit primitive. All records are CRC-framed into a single
    /// buffer, written with one `write_all`, and made durable together;
    /// none of them may be acknowledged before this returns. A crash
    /// mid-batch leaves a clean prefix of the batch (plus at most one
    /// torn record), which recovery truncates exactly like a single-record
    /// crash — no batch member was acknowledged, so no acknowledged commit
    /// is ever lost.
    ///
    /// Every payload is size-checked against [`MAX_RECORD`] before any
    /// byte hits disk; an oversized member rejects the whole batch. An
    /// empty batch is a no-op (no write, no fsync).
    pub fn append_batch<S: AsRef<str>>(&mut self, payloads: &[S]) -> Result<u64> {
        if payloads.is_empty() {
            return Ok(self.end);
        }
        let timer = dduf_obs::timer();
        let mut total = 0usize;
        for payload in payloads {
            let body = payload.as_ref().as_bytes();
            if body.len() as u64 > MAX_RECORD as u64 {
                return Err(PersistError::RecordTooLarge {
                    path: self.path.display().to_string(),
                    bytes: body.len() as u64,
                    max: MAX_RECORD,
                });
            }
            total += RECORD_HEADER + body.len();
        }
        let mut buf = Vec::with_capacity(total);
        for payload in payloads {
            let body = payload.as_ref().as_bytes();
            buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(body).to_le_bytes());
            buf.extend_from_slice(body);
        }
        self.file
            .seek(SeekFrom::Start(self.end))
            .map_err(io_err(&self.path, "seek"))?;
        self.file
            .write_all(&buf)
            .map_err(io_err(&self.path, "append"))?;
        if let Some(delay) = sync_delay() {
            std::thread::sleep(delay);
        }
        self.file.sync_data().map_err(io_err(&self.path, "sync"))?;
        self.end += buf.len() as u64;
        dduf_obs::record_timed(
            "journal.append",
            "",
            &[
                ("appends", payloads.len() as u64),
                ("bytes", buf.len() as u64),
                ("fsyncs", 1),
            ],
            timer.elapsed_us(),
        );
        Ok(self.end)
    }

    /// Byte offset just past the last record (where the next one goes).
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dduf_journal_{}_{name}.log", std::process::id()))
    }

    #[test]
    fn create_append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        j.append("-q(b). +p(c).").unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[0].payload, "+p(a).");
        assert_eq!(s.records[1].payload, "-q(b). +p(c).");
        assert_eq!(s.records[1].index, 1);
        assert!(s.torn.is_none());
        assert_eq!(s.end, j.end());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_truncated_on_open() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        let keep = j.end();
        j.append("+p(b).").unwrap();
        drop(j);
        // Cut into the middle of the second record.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..keep as usize + 5]).unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1);
        assert_eq!(
            s.torn,
            Some(TornTail {
                offset: keep,
                bytes: 5
            })
        );
        // Open truncates the dangling bytes and can append again.
        let (mut j, s) = Journal::open(&path).unwrap();
        assert_eq!(s.end, keep);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep);
        j.append("+p(c).").unwrap();
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[1].payload, "+p(c).");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn midlog_corruption_is_hard_error() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        j.append("+p(b).").unwrap();
        drop(j);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a payload byte of record 0 (magic + header + 1).
        data[MAGIC.len() + RECORD_HEADER + 1] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        match scan(&path) {
            Err(PersistError::Corrupt { record, detail, .. }) => {
                assert_eq!(record, 0);
                assert!(detail.contains("checksum mismatch"), "{detail}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
        assert!(Journal::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn implausible_length_prefix_is_corrupt() {
        // A pre-cap writer could frame a record whose length prefix
        // exceeds MAX_RECORD; the scanner must reject it, not allocate.
        let path = tmp("hugelen");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        let keep = j.end();
        drop(j);
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&(MAX_RECORD + 1).to_le_bytes());
        data.extend_from_slice(&[0u8; 4]);
        data.extend_from_slice(b"short body");
        std::fs::write(&path, &data).unwrap();
        match scan(&path) {
            Err(PersistError::Corrupt {
                record,
                offset,
                detail,
                ..
            }) => {
                assert_eq!(record, 1);
                assert_eq!(offset, keep);
                assert!(detail.contains("implausible record length"), "{detail}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn streaming_scan_matches_collecting_scan() {
        let path = tmp("streaming");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        for i in 0..20 {
            j.append(&format!("+p(c{i}).")).unwrap();
        }
        drop(j);
        let collected = scan(&path).unwrap();
        let mut seen = Vec::new();
        let summary = scan_records(&path, &mut |r| {
            seen.push(r);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, collected.records);
        assert_eq!(summary.records, 20);
        assert_eq!(summary.end, collected.end);
        assert_eq!(summary.torn, None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn visitor_error_aborts_scan() {
        let path = tmp("visitabort");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        j.append("+p(b).").unwrap();
        drop(j);
        let mut visited = 0;
        let res = scan_records(&path, &mut |_| {
            visited += 1;
            Err(PersistError::NotADatabase("stop".into()))
        });
        assert!(res.is_err());
        assert_eq!(visited, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_append_is_one_fsync_and_scans_identically() {
        let single = tmp("batch_single");
        let batched = tmp("batch_group");
        let _ = std::fs::remove_file(&single);
        let _ = std::fs::remove_file(&batched);
        let payloads = ["+p(a).", "-q(b). +p(c).", "+r(d)."];

        let mut j = Journal::create(&single).unwrap();
        for p in payloads {
            j.append(p).unwrap();
        }
        let single_end = j.end();
        drop(j);

        let mut j = Journal::create(&batched).unwrap();
        let ((), report) = dduf_obs::capture(|| {
            j.append_batch(&payloads).unwrap();
        });
        // One span, one fsync, three framed records.
        assert_eq!(report.count("journal.append", ""), 1);
        assert_eq!(report.counter("journal.append", "", "fsyncs"), 1);
        assert_eq!(report.counter("journal.append", "", "appends"), 3);
        assert_eq!(j.end(), single_end, "framing must match record-at-a-time");
        drop(j);

        // Byte-identical files: the batch is indistinguishable on disk.
        assert_eq!(
            std::fs::read(&single).unwrap(),
            std::fs::read(&batched).unwrap()
        );
        let s = scan(&batched).unwrap();
        assert_eq!(s.records.len(), 3);
        assert_eq!(s.records[1].payload, "-q(b). +p(c).");
        std::fs::remove_file(&single).unwrap();
        std::fs::remove_file(&batched).unwrap();
    }

    #[test]
    fn batch_with_oversized_member_writes_nothing() {
        let path = tmp("batch_oversize");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        j.append("+p(a).").unwrap();
        let before = j.end();
        let huge = "x".repeat(MAX_RECORD as usize + 1);
        let res = j.append_batch(&["+p(b).", huge.as_str()]);
        assert!(matches!(res, Err(PersistError::RecordTooLarge { .. })));
        assert_eq!(j.end(), before);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        let s = scan(&path).unwrap();
        assert_eq!(s.records.len(), 1, "no batch member may land");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let path = tmp("batch_empty");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::create(&path).unwrap();
        let before = j.end();
        let ((), report) = dduf_obs::capture(|| {
            j.append_batch(&[] as &[&str]).unwrap();
        });
        assert_eq!(j.end(), before);
        assert_eq!(report.count("journal.append", ""), 0, "no fsync");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_magic_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"not a journal").unwrap();
        assert!(matches!(scan(&path), Err(PersistError::Corrupt { .. })));
        std::fs::remove_file(&path).unwrap();
    }
}
