//! # dduf-persist — durable state for the updating framework
//!
//! The paper's formalism is about transitions between consistent database
//! states, where a transaction is exactly a set of base-fact events —
//! which is precisely the content of a write-ahead log record. This crate
//! persists committed transactions as an append-only **event journal**
//! ([`journal`]) plus periodic atomic **snapshots** ([`snapshot`]), so
//! that crash **recovery** is nothing new: reopening a database replays
//! the journal tail through the same upward/commit path live sessions
//! use — a chain of upward evaluations (DESIGN.md §9).
//!
//! On-disk layout of a durable database directory:
//!
//! ```text
//! <dir>/snapshot.dl    full EDB+program dump, atomic (temp + rename)
//! <dir>/journal.log    MAGIC + length-prefixed, CRC-32'd event records
//! ```
//!
//! Durability contract (*kill-anywhere*): a transaction is durable once
//! [`DurableDb::commit`] (or the session hook) returns — the record is
//! fsynced **before** the in-memory state mutates. A crash at any byte
//! position leaves either a clean journal or a torn final record, and
//! open recovers exactly the longest acknowledged prefix. Corruption
//! *before* the final record is never truncated silently: it is a hard
//! error naming the damaged record.

#![forbid(unsafe_code)]
pub mod counts;
pub mod crc32;
pub mod error;
pub mod journal;
pub mod lock;
pub mod snapshot;

pub use counts::{CountsState, COUNTS_FILE};
pub use error::{PersistError, Result};
pub use journal::{Journal, Record, Scan, ScanSummary, TornTail, MAX_RECORD};
pub use lock::{DirLock, LOCK_FILE};
pub use snapshot::{Snapshot, JOURNAL_FILE, SNAPSHOT_FILE};

use dduf_core::processor::{ProcessorState, UpdateProcessor};
use dduf_core::transaction::Transaction;
use dduf_core::upward::maintain::MaintenanceEngine;
use dduf_core::upward::UpwardResult;
use std::path::{Path, PathBuf};

/// Serializes a transaction as one journal payload: its events in the
/// surface syntax the parser reads back (`+p(a). -q(b).`).
pub fn serialize_transaction(txn: &Transaction) -> String {
    let events: Vec<String> = txn.events().iter().map(|e| format!("{e}.")).collect();
    events.join(" ")
}

/// What recovery did while opening a durable database.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Journal byte offset the snapshot covered.
    pub snapshot_pos: u64,
    /// Journal records replayed through the upward/commit path.
    pub replayed: usize,
    /// Dangling bytes of a torn final record that were truncated.
    pub truncated_bytes: u64,
    /// Whether the maintenance state (support counts + extensions) was
    /// restored from `counts.state` instead of recomputed from scratch.
    pub counts_restored: bool,
}

/// The storage half of a durable database: directory + open journal.
/// [`Session`](../dduf/cli/struct.Session.html)-style frontends hold this
/// next to their own [`UpdateProcessor`] and call [`record_commit`]
/// from a [`commit_with_hook`](UpdateProcessor::commit_with_hook) hook.
///
/// [`record_commit`]: DurableStore::record_commit
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    journal: Journal,
    /// Exclusive directory lock, held for the store's lifetime so a
    /// second process cannot race the journal (released on drop or
    /// process death — including SIGKILL).
    _lock: DirLock,
}

impl DurableStore {
    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Byte offset past the last journal record.
    pub fn journal_end(&self) -> u64 {
        self.journal.end()
    }

    /// Appends a committed transaction to the journal (fsynced). Shaped
    /// for [`UpdateProcessor::commit_with_hook`]: the error is the core
    /// error type, so a failed append vetoes the in-memory mutation.
    pub fn record_commit(&mut self, txn: &Transaction) -> dduf_core::Result<()> {
        self.journal
            .append(&serialize_transaction(txn))
            .map(|_| ())
            .map_err(|e| dduf_core::Error::Storage(e.to_string()))
    }

    /// Appends a *batch* of serialized transactions behind exactly one
    /// fsync ([`Journal::append_batch`]) — the server's group-commit
    /// path. Either the whole batch is durable when this returns, or
    /// nothing was acknowledged: on error the caller must discard every
    /// staged in-memory effect of the batch.
    pub fn record_commit_batch<S: AsRef<str>>(&mut self, payloads: &[S]) -> dduf_core::Result<u64> {
        self.journal
            .append_batch(payloads)
            .map_err(|e| dduf_core::Error::Storage(e.to_string()))
    }

    /// Writes a snapshot of `db` covering the whole journal so far.
    pub fn checkpoint(&mut self, db: &dduf_datalog::storage::database::Database) -> Result<u64> {
        self.checkpoint_with_maint(db, None)
    }

    /// [`checkpoint`](Self::checkpoint) that also persists the maintenance
    /// state next to the snapshot (or removes a stale counts file when the
    /// session runs without maintenance). The snapshot is renamed into
    /// place first: a crash between the two renames leaves a counts file
    /// whose `journal_pos` disagrees with the snapshot's, which recovery
    /// rejects and recomputes — never a torn restore.
    pub fn checkpoint_with_maint(
        &mut self,
        db: &dduf_datalog::storage::database::Database,
        maint: Option<&MaintenanceEngine>,
    ) -> Result<u64> {
        let pos = self.journal.end();
        snapshot::write(&self.dir, db, pos)?;
        match maint {
            Some(engine) => counts::write(&self.dir, engine, pos)?,
            None => counts::remove(&self.dir)?,
        }
        Ok(pos)
    }
}

/// A durable deductive database: an [`UpdateProcessor`] whose commits are
/// journaled, plus snapshot/checkpoint management.
#[derive(Debug)]
pub struct DurableDb {
    store: DurableStore,
    proc: UpdateProcessor,
    recovery: Recovery,
}

impl DurableDb {
    /// Creates a durable database in `dir` from database source text
    /// (program + initial facts). The directory is created if missing;
    /// initializing over an existing durable database is refused.
    pub fn init(dir: impl AsRef<Path>, schema_src: &str) -> Result<DurableDb> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(error::io_err(dir, "create"))?;
        let lock = DirLock::acquire(dir)?;
        if dir.join(SNAPSHOT_FILE).exists() || dir.join(JOURNAL_FILE).exists() {
            return Err(PersistError::AlreadyExists(dir.display().to_string()));
        }
        let db = dduf_datalog::parser::parse_database(schema_src)
            .map_err(|e| PersistError::Core(e.into()))?;
        let proc = UpdateProcessor::new(db)?.with_maintenance()?;
        let journal = Journal::create(&dir.join(JOURNAL_FILE))?;
        snapshot::write(dir, proc.database(), journal.end())?;
        counts::write(
            dir,
            proc.maintenance().expect("enabled above"),
            journal.end(),
        )?;
        Ok(DurableDb {
            store: DurableStore {
                dir: dir.to_path_buf(),
                journal,
                _lock: lock,
            },
            proc,
            recovery: Recovery::default(),
        })
    }

    /// Opens a durable database: loads the latest snapshot, truncates a
    /// torn final journal record if a crash left one, and replays the
    /// journal tail through the normal upward/commit path.
    pub fn open(dir: impl AsRef<Path>) -> Result<DurableDb> {
        let dir = dir.as_ref();
        if !dir.is_dir() {
            return Err(PersistError::NotADatabase(dir.display().to_string()));
        }
        let lock = DirLock::acquire(dir)?;
        let snap = snapshot::read(dir)?;
        let journal_path = dir.join(JOURNAL_FILE);
        if !journal_path.exists() {
            return Err(PersistError::NotADatabase(dir.display().to_string()));
        }
        let (journal, scan) = Journal::open(&journal_path)?;
        // Restore the maintenance state from the counts file when it
        // exactly matches the snapshot (same covered journal position and
        // a split that fits the program); anything else falls back to a
        // full recompute. Partial or stale state is never loaded.
        let saved = counts::read(dir)
            .ok()
            .filter(|c| c.journal_pos == snap.journal_pos)
            .and_then(|c| MaintenanceEngine::from_saved(&snap.db, c.counts, c.dred_exts).ok());
        let counts_restored = saved.is_some();
        let mut proc = match saved {
            Some(engine) => {
                dduf_obs::record(
                    "counts.persist",
                    "",
                    &[
                        ("loaded", 1),
                        ("restored_tuples", engine.tuple_count() as u64),
                    ],
                );
                let interp = engine.interpretation();
                UpdateProcessor::from_state(ProcessorState {
                    db: snap.db,
                    interp,
                    maint: Some(engine),
                })
            }
            None => {
                dduf_obs::record("counts.persist", "", &[("recompute", 1)]);
                UpdateProcessor::new(snap.db)?.with_maintenance()?
            }
        };
        let mut replayed = 0usize;
        for rec in &scan.records {
            if rec.offset < snap.journal_pos {
                continue; // covered by the snapshot
            }
            let txn = proc
                .transaction(&rec.payload)
                .map_err(|e| PersistError::Replay {
                    record: rec.index,
                    source: e,
                })?;
            proc.commit(&txn).map_err(|e| PersistError::Replay {
                record: rec.index,
                source: e,
            })?;
            replayed += 1;
        }
        let truncated_bytes = scan.torn.map_or(0, |t| t.bytes);
        dduf_obs::record(
            "recovery.open",
            "",
            &[
                ("replayed", replayed as u64),
                ("truncated_bytes", truncated_bytes),
            ],
        );
        Ok(DurableDb {
            store: DurableStore {
                dir: dir.to_path_buf(),
                journal,
                _lock: lock,
            },
            proc,
            recovery: Recovery {
                snapshot_pos: snap.journal_pos,
                replayed,
                truncated_bytes,
                counts_restored,
            },
        })
    }

    /// What recovery did when this handle was opened (zeroes after `init`).
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// The underlying processor.
    pub fn processor(&self) -> &UpdateProcessor {
        &self.proc
    }

    /// The storage half.
    pub fn store(&self) -> &DurableStore {
        &self.store
    }

    /// Parses a transaction against this database.
    pub fn transaction(&self, src: &str) -> dduf_core::Result<Transaction> {
        self.proc.transaction(src)
    }

    /// Commits a transaction durably: the upward interpretation is
    /// evaluated, the event record is fsynced to the journal, and only
    /// then does the in-memory state change (write-ahead ordering). On an
    /// append error nothing moved: disk and memory still agree on the
    /// old state.
    pub fn commit(&mut self, txn: &Transaction) -> Result<UpwardResult> {
        let store = &mut self.store;
        self.proc
            .commit_with_hook(txn, &mut |t| store.record_commit(t))
            .map_err(PersistError::Core)
    }

    /// Writes a snapshot covering the whole journal so far (plus the
    /// maintenance state, so the next open restores instead of
    /// recomputing); returns the covered journal position.
    pub fn checkpoint(&mut self) -> Result<u64> {
        self.store
            .checkpoint_with_maint(self.proc.database(), self.proc.maintenance())
    }

    /// Splits into processor + store, for frontends (the `dduf` shell)
    /// that own the processor themselves.
    pub fn into_parts(self) -> (UpdateProcessor, DurableStore) {
        (self.proc, self.store)
    }
}

/// The result of [`verify`]: everything a checksum scan can establish
/// without replaying.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Journal byte offset the snapshot covers.
    pub snapshot_pos: u64,
    /// Extensional facts in the snapshot.
    pub snapshot_facts: usize,
    /// Intact journal records (whole file).
    pub records: usize,
    /// Records past the snapshot position (replayed on next open).
    pub tail_records: usize,
    /// Bytes of intact journal (where the next append goes).
    pub journal_end: u64,
    /// A torn final record, if the journal ends mid-record.
    pub torn: Option<TornTail>,
}

/// Verifies a durable database without opening it for writing: the
/// snapshot must parse and pass its checksum, and every journal record
/// must pass its checksum and re-parse as event syntax. A torn final
/// record is reported (it is recoverable); mid-log corruption is the
/// usual hard error.
///
/// The journal is checked record-by-record via [`journal::scan_records`]
/// with bounded buffering — no payload is retained after its check — so a
/// journal much larger than memory verifies on a small machine.
pub fn verify(dir: impl AsRef<Path>) -> Result<VerifyReport> {
    let dir = dir.as_ref();
    let snap = snapshot::read(dir)?;
    let journal_path = dir.join(JOURNAL_FILE);
    if !journal_path.exists() {
        return Err(PersistError::NotADatabase(dir.display().to_string()));
    }
    let mut tail_records = 0usize;
    let summary = journal::scan_records(&journal_path, &mut |rec| {
        dduf_datalog::parser::parse_events(&rec.payload).map_err(|e| PersistError::Corrupt {
            path: journal_path.display().to_string(),
            record: rec.index,
            offset: rec.offset,
            detail: format!("payload is not event syntax: {e}"),
        })?;
        if rec.offset >= snap.journal_pos {
            tail_records += 1;
        }
        Ok(())
    })?;
    Ok(VerifyReport {
        snapshot_pos: snap.journal_pos,
        snapshot_facts: snap.db.fact_count(),
        records: summary.records,
        tail_records,
        journal_end: summary.end,
        torn: summary.torn,
    })
}

/// Reads the journal for display: the snapshot's covered position plus
/// every record. Used by `dduf db log`.
pub fn read_log(dir: impl AsRef<Path>) -> Result<(u64, Scan)> {
    let dir = dir.as_ref();
    let snap = snapshot::read(dir)?;
    let journal_path = dir.join(JOURNAL_FILE);
    if !journal_path.exists() {
        return Err(PersistError::NotADatabase(dir.display().to_string()));
    }
    Ok((snap.journal_pos, journal::scan(&journal_path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::ast::Pred;

    const SCHEMA: &str = "la(dolors). u_benefit(dolors).
        unemp(X) :- la(X), not works(X).
        :- unemp(X), not u_benefit(X).";

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dduf_persist_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn init_commit_reopen() {
        let dir = tmpdir("basic");
        let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
        let txn = db.transaction("+works(dolors).").unwrap();
        let res = db.commit(&txn).unwrap();
        assert_eq!(res.derived.to_string(), "{-unemp(dolors)}");
        drop(db);

        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().replayed, 1);
        assert!(db
            .processor()
            .state()
            .relation(Pred::new("works", 1))
            .len()
            .eq(&1));
        assert!(db
            .processor()
            .interpretation()
            .relation(Pred::new("unemp", 1))
            .is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_limits_replay() {
        let dir = tmpdir("checkpoint");
        let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
        let t1 = db.transaction("+la(ana).").unwrap();
        db.commit(&t1).unwrap();
        db.checkpoint().unwrap();
        let t2 = db.transaction("+works(ana).").unwrap();
        db.commit(&t2).unwrap();
        drop(db);

        let db = DurableDb::open(&dir).unwrap();
        assert_eq!(db.recovery().replayed, 1, "only the post-snapshot tail");
        assert_eq!(db.processor().database().fact_count(), 4);
        let report = verify(&dir).unwrap();
        assert_eq!(report.records, 2);
        assert_eq!(report.tail_records, 1);
        assert!(report.torn.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn init_refuses_existing() {
        let dir = tmpdir("existing");
        DurableDb::init(&dir, SCHEMA).unwrap();
        assert!(matches!(
            DurableDb::init(&dir, SCHEMA),
            Err(PersistError::AlreadyExists(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_is_not_a_database() {
        let dir = tmpdir("missing");
        assert!(matches!(
            DurableDb::open(&dir),
            Err(PersistError::NotADatabase(_))
        ));
    }

    #[test]
    fn serialize_round_trips_through_parse() {
        let dir = tmpdir("serialize");
        let db = DurableDb::init(&dir, SCHEMA).unwrap();
        let txn = db
            .transaction("+works(ana). -u_benefit(dolors). +la('Señor X').")
            .unwrap();
        let src = serialize_transaction(&txn);
        let txn2 = db.transaction(&src).unwrap();
        assert_eq!(txn, txn2, "serialized form {src:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
