//! Persisted maintenance state: support counts and materialized-view
//! extensions, written atomically next to the snapshot.
//!
//! A counts file lets recovery restore the
//! [`MaintenanceEngine`]
//! (support counts for the counting strata, extensions for the recursive
//! DRed strata) **without re-deriving a single stratum** — re-derivation
//! is exactly the cost the maintenance engine exists to avoid, and on a
//! large database paying it at every restart defeats the point.
//!
//! Format (`counts.state`):
//!
//! ```text
//! % dduf-counts v1 journal_pos=<bytes> crc=<8 hex digits>
//! c <count> +atom.        (one counted tuple of a counting stratum)
//! x +atom.                (one extension tuple of a DRed stratum)
//! ```
//!
//! Tuples render in the same event surface syntax the journal uses, so
//! they round-trip through the existing event parser. The body is
//! CRC-32-covered and the file is written with the same temp + fsync +
//! rename + directory-fsync dance as the snapshot: a crash leaves either
//! the old complete file or the new complete file.
//!
//! The `journal_pos` header field ties the file to a snapshot: recovery
//! only restores from a counts file whose position **equals** the
//! snapshot's. Anything else — missing file, stale position, checksum
//! mismatch, unparsable body, or a split that no longer fits the program
//! — makes [`read`] fail, and the caller falls back to recomputing the
//! maintenance state from scratch. Partial state is never loaded.

use crate::crc32::crc32;
use crate::error::{io_err, PersistError, Result};
use dduf_core::upward::maintain::MaintenanceEngine;
use dduf_datalog::ast::Pred;
use dduf_datalog::storage::relation::Relation;
use dduf_datalog::storage::tuple::Tuple;
use dduf_events::event::GroundEvent;
use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::Path;

/// File name of the persisted maintenance state inside a durable-database
/// directory.
pub const COUNTS_FILE: &str = "counts.state";

const HEADER_PREFIX: &str = "% dduf-counts v1 ";

/// Maintenance state read back from disk.
#[derive(Clone, Debug)]
pub struct CountsState {
    /// Journal byte offset the state covers; must equal the snapshot's.
    pub journal_pos: u64,
    /// Support counts of the counting strata.
    pub counts: BTreeMap<Pred, HashMap<Tuple, i64>>,
    /// Extensions of the recursive (DRed) strata.
    pub dred_exts: BTreeMap<Pred, Relation>,
}

impl CountsState {
    /// Total persisted tuples (counted + DRed extension).
    pub fn tuple_count(&self) -> usize {
        self.counts.values().map(HashMap::len).sum::<usize>()
            + self.dred_exts.values().map(Relation::len).sum::<usize>()
    }
}

/// Writes the maintenance state of `engine` covering the journal up to
/// `journal_pos`, atomically. Records a `counts.persist` span
/// (`writes`/`tuples`/`bytes`).
pub fn write(dir: &Path, engine: &MaintenanceEngine, journal_pos: u64) -> Result<()> {
    let timer = dduf_obs::timer();
    let mut body = String::new();
    let mut tuples = 0u64;
    for (&pred, map) in engine.counts() {
        // HashMap iteration is unordered; sort for a deterministic file.
        let mut entries: Vec<(&Tuple, i64)> = map.iter().map(|(t, &c)| (t, c)).collect();
        entries.sort();
        for (t, c) in entries {
            body.push_str(&format!("c {c} {}.\n", GroundEvent::ins(pred, t.clone())));
            tuples += 1;
        }
    }
    for (&pred, rel) in engine.extensions() {
        if engine.counts().contains_key(&pred) {
            continue; // counting extensions are implied by the counts
        }
        for t in rel.iter() {
            body.push_str(&format!("x {}.\n", GroundEvent::ins(pred, t.clone())));
            tuples += 1;
        }
    }
    let crc = crc32(body.as_bytes());
    let content = format!("{HEADER_PREFIX}journal_pos={journal_pos} crc={crc:08x}\n{body}");
    let tmp = dir.join(format!("{COUNTS_FILE}.tmp"));
    let target = dir.join(COUNTS_FILE);
    let mut f = std::fs::File::create(&tmp).map_err(io_err(&tmp, "create"))?;
    f.write_all(content.as_bytes())
        .map_err(io_err(&tmp, "write"))?;
    f.sync_all().map_err(io_err(&tmp, "sync"))?;
    drop(f);
    std::fs::rename(&tmp, &target).map_err(io_err(&target, "rename into"))?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    dduf_obs::record_timed(
        "counts.persist",
        "",
        &[
            ("writes", 1),
            ("tuples", tuples),
            ("bytes", content.len() as u64),
        ],
        timer.elapsed_us(),
    );
    Ok(())
}

/// Removes a stale counts file, if any (e.g. when checkpointing a database
/// whose session has no maintenance engine: a survivor from an earlier
/// configuration must not be restored against a newer snapshot).
pub fn remove(dir: &Path) -> Result<()> {
    let path = dir.join(COUNTS_FILE);
    match std::fs::remove_file(&path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(io_err(&path, "remove")(e)),
    }
}

/// Reads and validates the persisted maintenance state. Every failure
/// mode — missing file, bad header, checksum mismatch, unparsable line —
/// is an error; the caller decides whether to fall back to a recompute.
pub fn read(dir: &Path) -> Result<CountsState> {
    let path = dir.join(COUNTS_FILE);
    let disp = path.display().to_string();
    let content = std::fs::read_to_string(&path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            PersistError::Snapshot {
                path: disp.clone(),
                detail: "no persisted maintenance state".into(),
            }
        } else {
            PersistError::Io {
                path: disp.clone(),
                op: "read",
                source: e,
            }
        }
    })?;
    let bad = |detail: String| PersistError::Snapshot {
        path: disp.clone(),
        detail,
    };
    let (header, body) = content
        .split_once('\n')
        .ok_or_else(|| bad("empty file".into()))?;
    let header = header
        .strip_prefix(HEADER_PREFIX)
        .ok_or_else(|| bad(format!("missing `{}` header", HEADER_PREFIX.trim())))?;
    let mut journal_pos = None;
    let mut stored_crc = None;
    for field in header.split_whitespace() {
        match field.split_once('=') {
            Some(("journal_pos", v)) => journal_pos = v.parse::<u64>().ok(),
            Some(("crc", v)) => stored_crc = u32::from_str_radix(v, 16).ok(),
            _ => {}
        }
    }
    let journal_pos =
        journal_pos.ok_or_else(|| bad("header is missing a numeric journal_pos".into()))?;
    let stored_crc = stored_crc.ok_or_else(|| bad("header is missing a hex crc".into()))?;
    let computed = crc32(body.as_bytes());
    if computed != stored_crc {
        return Err(bad(format!(
            "checksum mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
        )));
    }
    let mut counts: BTreeMap<Pred, HashMap<Tuple, i64>> = BTreeMap::new();
    let mut dred_exts: BTreeMap<Pred, Relation> = BTreeMap::new();
    for (ln, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad_line = |detail: &str| bad(format!("line {}: {detail}: {line}", ln + 2));
        let (pred, tuple, count) = if let Some(rest) = line.strip_prefix("c ") {
            let (count, ev) = rest
                .split_once(' ')
                .ok_or_else(|| bad_line("missing count"))?;
            let count: i64 = count
                .parse()
                .map_err(|_| bad_line("count is not a number"))?;
            if count <= 0 {
                return Err(bad_line("count must be positive"));
            }
            let (pred, tuple) = parse_tuple(ev).map_err(|e| bad_line(&e))?;
            (pred, tuple, Some(count))
        } else if let Some(ev) = line.strip_prefix("x ") {
            let (pred, tuple) = parse_tuple(ev).map_err(|e| bad_line(&e))?;
            (pred, tuple, None)
        } else {
            return Err(bad_line("unknown line tag"));
        };
        match count {
            Some(c) => {
                if counts.entry(pred).or_default().insert(tuple, c).is_some() {
                    return Err(bad_line("duplicate counted tuple"));
                }
            }
            None => {
                if !dred_exts.entry(pred).or_default().insert(tuple) {
                    return Err(bad_line("duplicate extension tuple"));
                }
            }
        }
    }
    Ok(CountsState {
        journal_pos,
        counts,
        dred_exts,
    })
}

/// Parses one `+atom.` payload back into its predicate and tuple.
fn parse_tuple(src: &str) -> std::result::Result<(Pred, Tuple), String> {
    let ev = dduf_datalog::parser::parse_event(src).map_err(|e| format!("bad event: {e}"))?;
    if !ev.insert {
        return Err("expected an insertion-shaped tuple".into());
    }
    let consts = ev
        .atom
        .as_tuple()
        .ok_or_else(|| "tuple is not ground".to_string())?;
    Ok((ev.atom.pred, Tuple::new(consts)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_core::processor::UpdateProcessor;
    use dduf_datalog::parser::parse_database;

    const SCHEMA: &str = "e(a, b). e(b, c). e(a, c). flag('Señor X').
        v(X) :- e(X, Y), not flag(X).
        tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).";

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dduf_counts_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn engine() -> MaintenanceEngine {
        let proc = UpdateProcessor::new(parse_database(SCHEMA).unwrap())
            .unwrap()
            .with_maintenance()
            .unwrap();
        proc.maintenance().unwrap().clone()
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmpdir("roundtrip");
        let engine = engine();
        write(&dir, &engine, 7).unwrap();
        let state = read(&dir).unwrap();
        assert_eq!(state.journal_pos, 7);
        assert_eq!(&state.counts, engine.counts());
        assert_eq!(state.tuple_count(), engine.tuple_count());
        // The restored state rebuilds an identical engine.
        let db = parse_database(SCHEMA).unwrap();
        let restored = MaintenanceEngine::from_saved(&db, state.counts, state.dred_exts).unwrap();
        assert_eq!(restored.extensions(), engine.extensions());
        assert!(!dir.join(format!("{COUNTS_FILE}.tmp")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_body_fails_checksum() {
        let dir = tmpdir("damage");
        write(&dir, &engine(), 7).unwrap();
        let path = dir.join(COUNTS_FILE);
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("x +tc(zz, zz).\n");
        std::fs::write(&path, content).unwrap();
        match read(&dir) {
            Err(PersistError::Snapshot { detail, .. }) => {
                assert!(detail.contains("checksum mismatch"), "{detail}")
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_body_fails_checksum() {
        let dir = tmpdir("truncate");
        write(&dir, &engine(), 7).unwrap();
        let path = dir.join(COUNTS_FILE);
        let content = std::fs::read(&path).unwrap();
        std::fs::write(&path, &content[..content.len() - 9]).unwrap();
        assert!(read(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_is_idempotent() {
        let dir = tmpdir("remove");
        remove(&dir).unwrap(); // nothing there: fine
        write(&dir, &engine(), 7).unwrap();
        remove(&dir).unwrap();
        assert!(!dir.join(COUNTS_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
