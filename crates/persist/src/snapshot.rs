//! Snapshots (checkpoints): a full dump of the database in re-parseable
//! surface syntax, written atomically.
//!
//! A snapshot is the pretty-printer's output (`pretty::database`) behind
//! one header comment recording the journal position it covers and a
//! CRC-32 of the body:
//!
//! ```text
//! % dduf-snapshot v1 journal_pos=<bytes> crc=<8 hex digits>
//! <program directives, rules, facts>
//! ```
//!
//! The header is a `%` comment, so the file is *also* a plain loadable
//! database source. Atomicity is temp-file + rename: the snapshot is
//! written to `snapshot.dl.tmp`, fsynced, then renamed over
//! `snapshot.dl` — a crash at any point leaves either the old complete
//! snapshot or the new complete snapshot, never a mix.

use crate::crc32::crc32;
use crate::error::{io_err, PersistError, Result};
use dduf_datalog::storage::database::Database;
use std::io::Write;
use std::path::Path;

/// File name of the snapshot inside a durable-database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.dl";

/// File name of the journal inside a durable-database directory.
pub const JOURNAL_FILE: &str = "journal.log";

const HEADER_PREFIX: &str = "% dduf-snapshot v1 ";

/// A snapshot read back from disk.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The database state the snapshot holds.
    pub db: Database,
    /// Journal byte offset the snapshot covers: replay starts here.
    pub journal_pos: u64,
}

/// Writes a snapshot of `db` covering the journal up to `journal_pos`,
/// atomically (temp file + fsync + rename + directory fsync).
pub fn write(dir: &Path, db: &Database, journal_pos: u64) -> Result<()> {
    let timer = dduf_obs::timer();
    let body = dduf_datalog::pretty::database(db);
    let crc = crc32(body.as_bytes());
    let content = format!("{HEADER_PREFIX}journal_pos={journal_pos} crc={crc:08x}\n{body}");
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let target = dir.join(SNAPSHOT_FILE);
    let mut f = std::fs::File::create(&tmp).map_err(io_err(&tmp, "create"))?;
    f.write_all(content.as_bytes())
        .map_err(io_err(&tmp, "write"))?;
    f.sync_all().map_err(io_err(&tmp, "sync"))?;
    drop(f);
    std::fs::rename(&tmp, &target).map_err(io_err(&target, "rename into"))?;
    sync_dir(dir);
    dduf_obs::record_timed(
        "snapshot.write",
        "",
        &[
            ("writes", 1),
            ("bytes", content.len() as u64),
            ("facts", db.fact_count() as u64),
        ],
        timer.elapsed_us(),
    );
    Ok(())
}

/// Fsyncs a directory so a rename is durable (best-effort; not all
/// platforms allow opening a directory for sync).
fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Reads and validates the snapshot of a durable-database directory.
pub fn read(dir: &Path) -> Result<Snapshot> {
    let path = dir.join(SNAPSHOT_FILE);
    let disp = path.display().to_string();
    let content = std::fs::read_to_string(&path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            PersistError::NotADatabase(dir.display().to_string())
        } else {
            PersistError::Io {
                path: disp.clone(),
                op: "read",
                source: e,
            }
        }
    })?;
    let bad = |detail: String| PersistError::Snapshot {
        path: disp.clone(),
        detail,
    };
    let (header, body) = content
        .split_once('\n')
        .ok_or_else(|| bad("empty file".into()))?;
    let header = header
        .strip_prefix(HEADER_PREFIX)
        .ok_or_else(|| bad(format!("missing `{}` header", HEADER_PREFIX.trim())))?;
    let mut journal_pos = None;
    let mut stored_crc = None;
    for field in header.split_whitespace() {
        match field.split_once('=') {
            Some(("journal_pos", v)) => journal_pos = v.parse::<u64>().ok(),
            Some(("crc", v)) => stored_crc = u32::from_str_radix(v, 16).ok(),
            _ => {}
        }
    }
    let journal_pos =
        journal_pos.ok_or_else(|| bad("header is missing a numeric journal_pos".into()))?;
    let stored_crc = stored_crc.ok_or_else(|| bad("header is missing a hex crc".into()))?;
    let computed = crc32(body.as_bytes());
    if computed != stored_crc {
        return Err(bad(format!(
            "checksum mismatch (stored {stored_crc:#010x}, computed {computed:#010x})"
        )));
    }
    let db = dduf_datalog::parser::parse_database(body)
        .map_err(|e| bad(format!("body does not parse: {e}")))?;
    Ok(Snapshot { db, journal_pos })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::parser::parse_database;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dduf_snap_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn db() -> Database {
        parse_database(
            "la(dolors). u_benefit(dolors).
             unemp(X) :- la(X), not works(X).
             :- unemp(X), not u_benefit(X).",
        )
        .unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmpdir("roundtrip");
        write(&dir, &db(), 42).unwrap();
        let snap = read(&dir).unwrap();
        assert_eq!(snap.journal_pos, 42);
        assert_eq!(snap.db.fact_count(), db().fact_count());
        assert_eq!(
            snap.db.program().rules().len(),
            db().program().rules().len()
        );
        // No temp file left behind.
        assert!(!dir.join("snapshot.dl.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_atomically() {
        let dir = tmpdir("rewrite");
        write(&dir, &db(), 8).unwrap();
        write(&dir, &db(), 99).unwrap();
        assert_eq!(read(&dir).unwrap().journal_pos, 99);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_body_fails_checksum() {
        let dir = tmpdir("damage");
        write(&dir, &db(), 8).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("extra(garbage).\n");
        std::fs::write(&path, content).unwrap();
        match read(&dir) {
            Err(PersistError::Snapshot { detail, .. }) => {
                assert!(detail.contains("checksum mismatch"), "{detail}")
            }
            other => panic!("expected snapshot error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_not_a_database() {
        let dir = tmpdir("missing");
        assert!(matches!(read(&dir), Err(PersistError::NotADatabase(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_is_a_comment_for_the_parser() {
        let dir = tmpdir("comment");
        write(&dir, &db(), 8).unwrap();
        let content = std::fs::read_to_string(dir.join(SNAPSHOT_FILE)).unwrap();
        // The whole file, header included, is loadable source.
        assert!(parse_database(&content).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
