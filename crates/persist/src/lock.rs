//! Cross-process exclusivity for a durable database directory.
//!
//! A durable database has exactly one writer: the journal's append
//! offset and the snapshot's covered position are both in-memory state
//! of the process that opened it, so two processes appending (or one
//! appending while another checkpoints) would silently interleave and
//! corrupt each other's view. [`DirLock`] makes that exclusivity
//! explicit: every open of a [`DurableDb`](crate::DurableDb) — the
//! interactive `dduf db open` session, `dduf serve`, `checkpoint`,
//! `stats` — first takes an OS advisory lock on `<dir>/dduf.lock`, and a
//! second process gets a clear error instead of a race.
//!
//! The lock is a kernel `flock`-style lock on an open file descriptor
//! ([`std::fs::File::try_lock`]), **not** the existence of the file: it
//! is released automatically when the process exits, however it exits —
//! a SIGKILLed server leaves no stale lock, which the crash-recovery
//! suite depends on. The lock file itself stays behind (empty) and is
//! harmless.
//!
//! Read-only inspection (`dduf db log`, `dduf db verify`) deliberately
//! does *not* lock: scanning a live database is safe — the worst a
//! concurrent append can produce is a torn final record, which the
//! scanner already reports as exactly that.

use crate::error::{io_err, PersistError, Result};
use std::fs::{File, OpenOptions};
use std::path::Path;

/// Name of the lock file inside a durable database directory.
pub const LOCK_FILE: &str = "dduf.lock";

/// An exclusive advisory lock on a durable database directory, held for
/// the lifetime of the value. Dropping it (or process death, including
/// SIGKILL) releases the lock.
#[derive(Debug)]
pub struct DirLock {
    // Held only for the kernel lock on its descriptor.
    _file: File,
}

impl DirLock {
    /// Acquires the directory's exclusive lock, creating the lock file if
    /// missing. Fails with [`PersistError::Locked`] — without blocking —
    /// when another process (or another handle in this process) holds it.
    pub fn acquire(dir: &Path) -> Result<DirLock> {
        let path = dir.join(LOCK_FILE);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(io_err(&path, "create"))?;
        match file.try_lock() {
            Ok(()) => Ok(DirLock { _file: file }),
            Err(std::fs::TryLockError::WouldBlock) => Err(PersistError::Locked {
                path: path.display().to_string(),
            }),
            Err(std::fs::TryLockError::Error(e)) => Err(PersistError::Io {
                path: path.display().to_string(),
                op: "lock",
                source: e,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dduf_lock_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn second_acquire_fails_until_first_drops() {
        let dir = tmpdir("exclusive");
        let first = DirLock::acquire(&dir).unwrap();
        match DirLock::acquire(&dir) {
            Err(PersistError::Locked { path }) => assert!(path.ends_with(LOCK_FILE), "{path}"),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(first);
        DirLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_file_persists_but_is_not_the_lock() {
        let dir = tmpdir("stale");
        drop(DirLock::acquire(&dir).unwrap());
        // The file is still there; acquiring again succeeds because the
        // kernel lock — not the file's existence — is the exclusivity.
        assert!(dir.join(LOCK_FILE).exists());
        DirLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
