//! A minimal, API-compatible stand-in for the subset of the
//! [`criterion`](https://docs.rs/criterion) benchmark harness that the
//! `dduf-bench` benches use.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real criterion cannot be resolved. This shim keeps
//! every bench compiling and *running* — it performs genuine warm-up and
//! timed measurement and prints mean/min wall-clock times per benchmark —
//! but it does none of criterion's statistics, HTML reports, or baseline
//! comparisons. Swap the `criterion` entry in the workspace
//! `Cargo.toml` back to the registry crate to get those.
//!
//! Supported surface: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::warm_up_time`],
//! [`BenchmarkGroup::measurement_time`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`],
//! [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.

#![forbid(unsafe_code)]
use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <substring>` filters benchmarks, as with real
        // criterion; harness flags such as `--bench` are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            filter: self.filter.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs configured groups (no-op in the shim; groups run eagerly).
    pub fn final_summary(&self) {}
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered with `Display` (e.g. an input size).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

impl BenchmarkId {
    /// Creates `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Finishes the group (measurement already happened eagerly).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: self.warm_up,
            },
            samples: Vec::new(),
        };
        // Warm-up: run the closure repeatedly until the budget is spent.
        f(&mut b);
        // Measurement: one closure invocation per sample, budget split
        // across the configured sample count.
        b.mode = Mode::Measure {
            per_sample: self.measurement / self.sample_size as u32,
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let samples = &b.samples;
        if samples.is_empty() {
            println!("{full:<48} (no samples)");
            return;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{full:<48} mean {:>12} min {:>12} ({} samples)",
            fmt_time(mean),
            fmt_time(min),
            samples.len()
        );
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

enum Mode {
    WarmUp { until: Duration },
    Measure { per_sample: Duration },
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                while start.elapsed() < until {
                    black_box(routine());
                }
            }
            Mode::Measure { per_sample } => {
                // Estimate iterations that fit in the per-sample budget,
                // then time them as one block.
                let t0 = Instant::now();
                black_box(routine());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let total = start.elapsed();
                self.samples.push(total.as_nanos() as f64 / iters as f64);
            }
        }
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(12.0), "12.0 ns");
        assert_eq!(fmt_time(1_500.0), "1.50 µs");
        assert_eq!(fmt_time(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_time(3_000_000_000.0), "3.00 s");
    }
}
