//! Transition rules (§3.2): definitions of the *new-state* predicates `Pⁿ`
//! in terms of old-state predicates and events.
//!
//! For each deductive rule `P(x̄) ← L₁ ∧ ... ∧ Lₙ`, the rule evaluated in
//! the new state is `Pⁿ(x̄) ← L₁ⁿ ∧ ... ∧ Lₙⁿ`, and each new-state literal
//! is replaced by its equivalent in terms of the old state and events:
//!
//! ```text
//! (3)  Qⁿ(t̄)   ≡  ( Q°(t̄) ∧ ¬del Q(t̄) ) ∨ ins Q(t̄)
//! (4)  ¬Qⁿ(t̄)  ≡  ( ¬Q°(t̄) ∧ ¬ins Q(t̄) ) ∨ del Q(t̄)
//! ```
//!
//! Distributing ∧ over ∨ yields the transition rule in disjunctive normal
//! form with `2^k` disjunctands for a `k`-literal body. Disjunct order
//! follows the paper's examples: the all-old disjunct first, then binary
//! counting with the first body literal as the most significant choice.

use crate::event::EventKind;
use crate::formula::{Conjunct, Dnf, TrLit};
use dduf_datalog::ast::{Atom, Pred, Rule};
use dduf_datalog::schema::Program;
use std::fmt;

/// The expansion of one defining rule of a derived predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransitionBranch {
    /// The head of the originating rule (its terms may contain constants
    /// or repeated variables; evaluation unifies against them).
    pub head: Atom,
    /// The `2^k` disjunctands.
    pub dnf: Dnf,
    /// The originating deductive rule.
    pub source: Rule,
}

/// The transition rule of a derived predicate `P`: the union of the DNF
/// expansions of all of its defining rules (`Pⁿ ↔ P₁ⁿ ∨ ... ∨ Pₘⁿ`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransitionRule {
    /// The derived predicate.
    pub pred: Pred,
    /// One branch per defining rule, in declaration order.
    pub branches: Vec<TransitionBranch>,
}

impl TransitionRule {
    /// Builds the transition rule for `pred` from its definition in
    /// `program`. A predicate with no rules yields no branches (its new
    /// state is identical to its — empty — old state).
    pub fn build(program: &Program, pred: Pred) -> TransitionRule {
        let branches = program
            .rules_for(pred)
            .into_iter()
            .map(expand_rule)
            .collect();
        TransitionRule { pred, branches }
    }

    /// Total number of disjunctands across branches.
    pub fn disjunct_count(&self) -> usize {
        self.branches.iter().map(|b| b.dnf.len()).sum()
    }

    /// Iterates `(head, conjunct)` pairs across all branches.
    pub fn disjuncts(&self) -> impl Iterator<Item = (&Atom, &Conjunct)> + '_ {
        self.branches
            .iter()
            .flat_map(|b| b.dnf.0.iter().map(move |c| (&b.head, c)))
    }
}

impl fmt::Display for TransitionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}ⁿ", b.head)?;
            write!(f, " ↔ {}", b.dnf)?;
        }
        Ok(())
    }
}

/// Expands one rule body into its `2^k` disjunctands.
fn expand_rule(rule: &Rule) -> TransitionBranch {
    // Per body literal, the two replacement choices of (3)/(4):
    // choice 0 ("old"):  positive L -> Q° ∧ ¬del Q ;  negative L -> ¬Q° ∧ ¬ins Q
    // choice 1 ("event"): positive L -> ins Q ;        negative L -> del Q
    let choices: Vec<[Vec<TrLit>; 2]> = rule
        .body
        .iter()
        .map(|lit| {
            let atom = lit.atom.clone();
            if lit.positive {
                [
                    vec![
                        TrLit::old_pos(atom.clone()),
                        TrLit::not_event(EventKind::Del, atom.clone()),
                    ],
                    vec![TrLit::event(EventKind::Ins, atom)],
                ]
            } else {
                [
                    vec![
                        TrLit::old_neg(atom.clone()),
                        TrLit::not_event(EventKind::Ins, atom.clone()),
                    ],
                    vec![TrLit::event(EventKind::Del, atom)],
                ]
            }
        })
        .collect();

    let k = choices.len();
    debug_assert!(k < usize::BITS as usize, "rule body too large to expand");
    let mut conjuncts = Vec::with_capacity(1usize << k);
    for mask in 0..(1usize << k) {
        let mut lits = Vec::new();
        for (j, choice) in choices.iter().enumerate() {
            // First literal = most significant bit, matching the paper's
            // enumeration order in example 3.1.
            let bit = (mask >> (k - 1 - j)) & 1;
            lits.extend(choice[bit].iter().cloned());
        }
        conjuncts.push(Conjunct(lits));
    }

    TransitionBranch {
        head: rule.head.clone(),
        dnf: Dnf(conjuncts),
        source: rule.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::ast::{Literal, Term};

    fn atom(name: &str, vars: &[&str]) -> Atom {
        Atom::new(name, vars.iter().map(|v| Term::var(v)).collect())
    }

    /// Example 3.1 of the paper: `P(x) ← Q(x) ∧ ¬R(x)` expands to exactly
    /// four disjunctands in the paper's order.
    #[test]
    fn example_3_1_expansion() {
        let mut b = Program::builder();
        b.rule(Rule::new(
            atom("p", &["X"]),
            vec![
                Literal::pos(atom("q", &["X"])),
                Literal::neg(atom("r", &["X"])),
            ],
        ));
        let prog = b.build().unwrap();
        let tr = TransitionRule::build(&prog, Pred::new("p", 1));
        assert_eq!(tr.branches.len(), 1);
        let dnf = &tr.branches[0].dnf;
        assert_eq!(dnf.len(), 4);
        let rendered: Vec<String> = dnf.0.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "qᵒ(X) ∧ not del q(X) ∧ not rᵒ(X) ∧ not ins r(X)",
                "qᵒ(X) ∧ not del q(X) ∧ del r(X)",
                "ins q(X) ∧ not rᵒ(X) ∧ not ins r(X)",
                "ins q(X) ∧ del r(X)",
            ]
        );
    }

    #[test]
    fn disjunct_count_is_two_to_the_k() {
        for k in 1..=8 {
            let body: Vec<Literal> = (0..k)
                .map(|i| Literal::pos(atom(&format!("b{i}"), &["X"])))
                .collect();
            let mut b = Program::builder();
            b.rule(Rule::new(atom("p", &["X"]), body));
            let prog = b.build().unwrap();
            let tr = TransitionRule::build(&prog, Pred::new("p", 1));
            assert_eq!(tr.disjunct_count(), 1 << k);
        }
    }

    #[test]
    fn multiple_defining_rules_union() {
        let mut b = Program::builder();
        b.rule(Rule::new(
            atom("p", &["X"]),
            vec![Literal::pos(atom("q", &["X"]))],
        ));
        b.rule(Rule::new(
            atom("p", &["X"]),
            vec![Literal::pos(atom("r", &["X"]))],
        ));
        let prog = b.build().unwrap();
        let tr = TransitionRule::build(&prog, Pred::new("p", 1));
        assert_eq!(tr.branches.len(), 2);
        assert_eq!(tr.disjunct_count(), 4); // 2 + 2
    }

    #[test]
    fn first_disjunct_is_all_old() {
        let mut b = Program::builder();
        b.rule(Rule::new(
            atom("p", &["X"]),
            vec![
                Literal::pos(atom("q", &["X"])),
                Literal::pos(atom("r", &["X"])),
            ],
        ));
        let prog = b.build().unwrap();
        let tr = TransitionRule::build(&prog, Pred::new("p", 1));
        let first = &tr.branches[0].dnf.0[0];
        assert!(first.is_event_free() || !first.has_positive_event());
        assert!(!first.has_positive_event());
        let last = tr.branches[0].dnf.0.last().unwrap();
        assert!(last.0.iter().all(TrLit::is_positive_event));
    }

    #[test]
    fn no_rules_no_branches() {
        let prog = Program::builder().build().unwrap();
        let tr = TransitionRule::build(&prog, Pred::new("ghost", 1));
        assert!(tr.branches.is_empty());
        assert_eq!(tr.disjunct_count(), 0);
    }

    #[test]
    fn display_renders_equivalence() {
        let mut b = Program::builder();
        b.rule(Rule::new(
            atom("p", &["X"]),
            vec![Literal::pos(atom("q", &["X"]))],
        ));
        let prog = b.build().unwrap();
        let tr = TransitionRule::build(&prog, Pred::new("p", 1));
        let s = tr.to_string();
        assert!(s.contains("↔"), "{s}");
        assert!(s.starts_with("p(X)ⁿ"), "{s}");
    }
}
