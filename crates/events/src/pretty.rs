//! Paper-style rendering of transition and event rules.
//!
//! The `Display` impls of [`crate::formula`] use the ASCII keywords of the
//! surface language (`ins p(X)`, `not del q(X)`, `qᵒ(X)`). This module
//! additionally offers the paper's own notation — ι for insertion events,
//! δ for deletion events — so that printed rules can be compared
//! symbol-for-symbol against the figures of §3 and §4.

use crate::event::EventKind;
use crate::formula::{Conjunct, Dnf, TrLit};
use crate::rules::{EventRuleSystem, EventRules};
use crate::transition::TransitionRule;
use dduf_datalog::ast::Term;
use std::fmt::Write as _;

/// Rendering notation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Style {
    /// Surface-language keywords: `ins p(X)`, `del p(X)`.
    #[default]
    Ascii,
    /// The paper's Greek notation: `ιp(X)`, `δp(X)`.
    Paper,
}

fn args(terms: &[Term]) -> String {
    if terms.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
    format!("({})", inner.join(", "))
}

/// Renders one transition literal.
pub fn literal(lit: &TrLit, style: Style) -> String {
    match lit {
        TrLit::Old(l) => {
            let neg = if l.positive { "" } else { "¬" };
            format!("{neg}{}ᵒ{}", l.atom.pred.name, args(&l.atom.terms))
        }
        TrLit::Event { positive, event } => {
            let neg = if *positive { "" } else { "¬" };
            let kw = match (style, event.kind) {
                (Style::Paper, EventKind::Ins) => "ι".to_string(),
                (Style::Paper, EventKind::Del) => "δ".to_string(),
                (Style::Ascii, EventKind::Ins) => "ins ".to_string(),
                (Style::Ascii, EventKind::Del) => "del ".to_string(),
            };
            format!(
                "{neg}{kw}{}{}",
                event.atom.pred.name,
                args(&event.atom.terms)
            )
        }
    }
}

/// Renders a conjunct.
pub fn conjunct(c: &Conjunct, style: Style) -> String {
    if c.0.is_empty() {
        return "true".to_string();
    }
    c.0.iter()
        .map(|l| literal(l, style))
        .collect::<Vec<_>>()
        .join(" ∧ ")
}

/// Renders a DNF, one disjunct per line (the paper's layout).
pub fn dnf(d: &Dnf, style: Style, indent: &str) -> String {
    if d.0.is_empty() {
        return format!("{indent}false");
    }
    let mut out = String::new();
    for (i, c) in d.0.iter().enumerate() {
        let sep = if i == 0 { "  " } else { "∨ " };
        let _ = writeln!(out, "{indent}{sep}({})", conjunct(c, style));
    }
    out.pop();
    out
}

/// Renders a transition rule (`Pⁿ(x̄) ↔ DNF`).
pub fn transition(tr: &TransitionRule, style: Style) -> String {
    let mut out = String::new();
    for branch in &tr.branches {
        let _ = writeln!(
            out,
            "{}ⁿ{} ↔",
            branch.head.pred.name,
            args(&branch.head.terms)
        );
        let _ = writeln!(out, "{}", dnf(&branch.dnf, style, "    "));
    }
    out
}

/// Renders the pair of event rules of one predicate:
/// `ιP(x̄) ↔ Pⁿ(x̄) ∧ ¬P°(x̄)` and `δP(x̄) ↔ P°(x̄) ∧ ¬Pⁿ(x̄)`, followed by
/// the transition rule they refer to.
pub fn event_rules(er: &EventRules, style: Style) -> String {
    let name = er.pred.name;
    let head_args = er
        .transition
        .branches
        .first()
        .map(|b| args(&b.head.terms))
        .unwrap_or_default();
    let (ins, del) = match style {
        Style::Paper => (format!("ι{name}"), format!("δ{name}")),
        Style::Ascii => (format!("ins {name}"), format!("del {name}")),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{ins}{head_args} ↔ {name}ⁿ{head_args} ∧ ¬{name}ᵒ{head_args}"
    );
    let _ = writeln!(
        out,
        "{del}{head_args} ↔ {name}ᵒ{head_args} ∧ ¬{name}ⁿ{head_args}"
    );
    let _ = write!(out, "{}", transition(&er.transition, style));
    out
}

/// Renders every event rule of a program.
pub fn system(sys: &EventRuleSystem, style: Style) -> String {
    let mut out = String::new();
    for (_, er) in sys.iter() {
        let _ = writeln!(out, "{}", event_rules(er, style));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::ast::Pred;
    use dduf_datalog::parser::parse_database;

    fn example_rules() -> EventRules {
        let db = parse_database("p(X) :- q(X), not r(X).").unwrap();
        EventRules::build(db.program(), Pred::new("p", 1))
    }

    #[test]
    fn paper_style_matches_section_3() {
        let er = example_rules();
        let s = event_rules(&er, Style::Paper);
        assert!(s.contains("ιp(X) ↔ pⁿ(X) ∧ ¬pᵒ(X)"), "{s}");
        assert!(s.contains("δp(X) ↔ pᵒ(X) ∧ ¬pⁿ(X)"), "{s}");
        // Second disjunct of example 3.1: (Q°(x) ∧ ¬δQ(x) ∧ δR(x))
        assert!(s.contains("(qᵒ(X) ∧ ¬δq(X) ∧ δr(X))"), "{s}");
    }

    #[test]
    fn ascii_style_uses_keywords() {
        let er = example_rules();
        let s = event_rules(&er, Style::Ascii);
        assert!(s.contains("ins p(X)"), "{s}");
        assert!(s.contains("¬del q(X)"), "{s}");
    }

    #[test]
    fn zero_ary_predicates_render_bare() {
        let db = parse_database(":- q(X), not r(X).").unwrap();
        let er = EventRules::build(db.program(), Pred::new("ic1", 0));
        let s = event_rules(&er, Style::Paper);
        assert!(s.contains("ιic1 ↔ ic1ⁿ ∧ ¬ic1ᵒ"), "{s}");
    }

    #[test]
    fn empty_dnf_renders_false() {
        let d = Dnf::falsum();
        assert_eq!(dnf(&d, Style::Paper, ""), "false");
    }

    #[test]
    fn system_covers_all_derived() {
        let db = parse_database("v(X) :- b(X). w(X) :- v(X).").unwrap();
        let sys = EventRuleSystem::build(db.program());
        let s = system(&sys, Style::Paper);
        assert!(s.contains("ιv(X)"));
        assert!(s.contains("ιw(X)"));
    }
}
