//! # dduf-events
//!
//! Transition rules and insertion/deletion **event rules** for deductive
//! databases, after Olivé \[Oli91\], as used by Teniente & Urpí's common
//! framework for deductive database updating problems (ICDE 1995, §3).
//!
//! Given a deductive database, this crate constructs, for every derived
//! predicate `P`:
//!
//! * the **transition rule** defining the new state `Pⁿ` in terms of the
//!   old state and events, in DNF with `2^k` disjunctands per defining rule
//!   ([`transition`]);
//! * the **event rules** `ins P(x̄) ↔ Pⁿ(x̄) ∧ ¬P°(x̄)` and
//!   `del P(x̄) ↔ P°(x̄) ∧ ¬Pⁿ(x̄)` ([`rules`]);
//! * the \[Oli91\]-style **simplifications** of these rules ([`simplify`]).
//!
//! The *interpretations* of the event rules — upward (induced changes) and
//! downward (translating requested changes) — live in `dduf-core`; this
//! crate is purely the rule machinery both share.
//!
//! ```
//! use dduf_datalog::parser::parse_database;
//! use dduf_datalog::ast::Pred;
//! use dduf_events::transition::TransitionRule;
//!
//! let db = parse_database("p(X) :- q(X), not r(X).").unwrap();
//! let tr = TransitionRule::build(db.program(), Pred::new("p", 1));
//! assert_eq!(tr.disjunct_count(), 4); // 2^2 (example 3.1 of the paper)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod formula;
pub mod pretty;
pub mod rules;
pub mod simplify;
pub mod store;
pub mod transition;

pub use event::{EventAtom, EventKind, GroundEvent};
pub use formula::{Conjunct, Dnf, TrLit};
pub use rules::{EventRuleSystem, EventRules};
pub use store::EventStore;
pub use transition::{TransitionBranch, TransitionRule};
