//! Sets of ground events, organized per predicate and kind, backed by
//! [`Relation`]s so the join pipeline can query them exactly like database
//! relations ("a base event literal corresponds to a query that must be
//! applied to the transaction", §4.1).

use crate::event::{EventKind, GroundEvent};
use dduf_datalog::ast::Pred;
use dduf_datalog::storage::relation::Relation;
use dduf_datalog::storage::tuple::Tuple;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

fn empty_relation() -> &'static Relation {
    static EMPTY: OnceLock<Relation> = OnceLock::new();
    EMPTY.get_or_init(Relation::new)
}

/// A set of ground events, queryable per (kind, predicate) as a relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventStore {
    ins: BTreeMap<Pred, Relation>,
    del: BTreeMap<Pred, Relation>,
}

impl EventStore {
    /// Creates an empty store.
    pub fn new() -> EventStore {
        EventStore::default()
    }

    /// Creates a store from events.
    pub fn from_events(events: impl IntoIterator<Item = GroundEvent>) -> EventStore {
        let mut s = EventStore::new();
        for e in events {
            s.insert(e);
        }
        s
    }

    /// Adds an event; returns `true` if it was new.
    pub fn insert(&mut self, e: GroundEvent) -> bool {
        self.side_mut(e.kind)
            .entry(e.pred)
            .or_default()
            .insert(e.tuple)
    }

    /// Removes an event; returns `true` if it was present.
    pub fn remove(&mut self, e: &GroundEvent) -> bool {
        self.side_mut(e.kind)
            .get_mut(&e.pred)
            .is_some_and(|r| r.remove(&e.tuple))
    }

    /// Membership test.
    pub fn contains(&self, e: &GroundEvent) -> bool {
        self.relation(e.kind, e.pred).contains(&e.tuple)
    }

    /// The relation of `kind` events on `pred` (empty if none).
    pub fn relation(&self, kind: EventKind, pred: Pred) -> &Relation {
        self.side(kind)
            .get(&pred)
            .unwrap_or_else(|| empty_relation())
    }

    /// Iterates all events in deterministic order (insertions before
    /// deletions, then by predicate, then by tuple).
    pub fn iter(&self) -> impl Iterator<Item = GroundEvent> + '_ {
        let ins = self
            .ins
            .iter()
            .flat_map(|(&p, r)| r.iter().map(move |t| GroundEvent::ins(p, t.clone())));
        let del = self
            .del
            .iter()
            .flat_map(|(&p, r)| r.iter().map(move |t| GroundEvent::del(p, t.clone())));
        ins.chain(del)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.ins
            .values()
            .chain(self.del.values())
            .map(Relation::len)
            .sum()
    }

    /// True iff no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Predicates that have at least one event of `kind`.
    pub fn predicates(&self, kind: EventKind) -> impl Iterator<Item = Pred> + '_ {
        self.side(kind)
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(&p, _)| p)
    }

    /// Adds every event of `other`.
    pub fn extend(&mut self, other: &EventStore) {
        for e in other.iter() {
            self.insert(e);
        }
    }

    /// True iff this store contains `+p(t)` and `-p(t)` for the same ground
    /// atom (an internally contradictory set of events — by definitions
    /// (1)/(2) an atom cannot be both inserted and deleted in one
    /// transition).
    pub fn has_conflict(&self) -> bool {
        self.conflicts().next().is_some()
    }

    /// The (pred, tuple) pairs appearing with both kinds.
    pub fn conflicts(&self) -> impl Iterator<Item = (Pred, Tuple)> + '_ {
        self.ins.iter().flat_map(move |(&p, r)| {
            let del = self.del.get(&p);
            r.iter()
                .filter(move |t| del.is_some_and(|d| d.contains(t)))
                .map(move |t| (p, t.clone()))
        })
    }

    fn side(&self, kind: EventKind) -> &BTreeMap<Pred, Relation> {
        match kind {
            EventKind::Ins => &self.ins,
            EventKind::Del => &self.del,
        }
    }

    fn side_mut(&mut self, kind: EventKind) -> &mut BTreeMap<Pred, Relation> {
        match kind {
            EventKind::Ins => &mut self.ins,
            EventKind::Del => &mut self.del,
        }
    }
}

impl FromIterator<GroundEvent> for EventStore {
    fn from_iter<I: IntoIterator<Item = GroundEvent>>(iter: I) -> EventStore {
        EventStore::from_events(iter)
    }
}

impl fmt::Display for EventStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::storage::tuple::syms;

    #[test]
    fn insert_query_relation() {
        let mut s = EventStore::new();
        let p = Pred::new("works", 1);
        assert!(s.insert(GroundEvent::ins(p, syms(&["john"]))));
        assert!(!s.insert(GroundEvent::ins(p, syms(&["john"]))));
        assert_eq!(s.relation(EventKind::Ins, p).len(), 1);
        assert!(s.relation(EventKind::Del, p).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicts_detected() {
        let p = Pred::new("p", 1);
        let mut s = EventStore::new();
        s.insert(GroundEvent::ins(p, syms(&["a"])));
        assert!(!s.has_conflict());
        s.insert(GroundEvent::del(p, syms(&["a"])));
        assert!(s.has_conflict());
        assert_eq!(s.conflicts().count(), 1);
    }

    #[test]
    fn display_is_set_like() {
        let p = Pred::new("r", 1);
        let s = EventStore::from_events([GroundEvent::del(p, syms(&["b"]))]);
        assert_eq!(s.to_string(), "{-r(b)}");
    }

    #[test]
    fn iter_deterministic() {
        let p = Pred::new("p", 1);
        let q = Pred::new("q", 1);
        let s = EventStore::from_events([
            GroundEvent::del(q, syms(&["z"])),
            GroundEvent::ins(p, syms(&["a"])),
        ]);
        let order: Vec<String> = s.iter().map(|e| e.to_string()).collect();
        assert_eq!(order, vec!["+p(a)", "-q(z)"]);
    }

    #[test]
    fn remove_and_absent_relations() {
        let p = Pred::new("p", 1);
        let mut s = EventStore::from_events([GroundEvent::ins(p, syms(&["a"]))]);
        assert!(s.remove(&GroundEvent::ins(p, syms(&["a"]))));
        assert!(!s.remove(&GroundEvent::ins(p, syms(&["a"]))));
        assert!(s.is_empty());
        // Relations for never-touched predicates are empty, not panics.
        assert!(s.relation(EventKind::Del, Pred::new("ghost", 3)).is_empty());
        assert_eq!(s.predicates(EventKind::Ins).count(), 0);
    }

    #[test]
    fn extend_unions() {
        let p = Pred::new("p", 1);
        let mut a = EventStore::from_events([GroundEvent::ins(p, syms(&["a"]))]);
        let b = EventStore::from_events([
            GroundEvent::ins(p, syms(&["a"])),
            GroundEvent::ins(p, syms(&["b"])),
        ]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }
}
