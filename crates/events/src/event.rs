//! Events: the insertions and deletions that occur in a transition from an
//! old database state to a new one (§3.1).
//!
//! For every predicate `P` there is an insertion event predicate `ins P`
//! (the paper's ιP) and a deletion event predicate `del P` (δP), defined by
//!
//! ```text
//! (1)  ∀x ( ins P(x) ↔  Pⁿ(x) ∧ ¬P°(x) )
//! (2)  ∀x ( del P(x) ↔  P°(x) ∧ ¬Pⁿ(x) )
//! ```
//!
//! On base predicates, event facts are the updates of a transaction; on
//! derived predicates they are the induced updates.

use dduf_datalog::ast::{Atom, Pred};
use dduf_datalog::storage::tuple::Tuple;
use std::fmt;

/// Whether an event inserts or deletes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EventKind {
    /// Insertion event (the paper's ιP): true after, false before.
    Ins,
    /// Deletion event (δP): true before, false after.
    Del,
}

impl EventKind {
    /// The opposite kind.
    pub fn flipped(self) -> EventKind {
        match self {
            EventKind::Ins => EventKind::Del,
            EventKind::Del => EventKind::Ins,
        }
    }

    /// Surface-syntax sigil (`+` / `-`).
    pub fn sigil(self) -> char {
        match self {
            EventKind::Ins => '+',
            EventKind::Del => '-',
        }
    }
}

/// A (possibly non-ground) event atom: `ins P(t̄)` or `del P(t̄)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventAtom {
    /// Insertion or deletion.
    pub kind: EventKind,
    /// The predicate atom the event is about.
    pub atom: Atom,
}

impl EventAtom {
    /// Creates an event atom.
    pub fn new(kind: EventKind, atom: Atom) -> EventAtom {
        EventAtom { kind, atom }
    }

    /// `ins P(t̄)`.
    pub fn ins(atom: Atom) -> EventAtom {
        EventAtom::new(EventKind::Ins, atom)
    }

    /// `del P(t̄)`.
    pub fn del(atom: Atom) -> EventAtom {
        EventAtom::new(EventKind::Del, atom)
    }

    /// The event's predicate.
    pub fn pred(&self) -> Pred {
        self.atom.pred
    }

    /// Converts to a ground event if all arguments are constants.
    pub fn to_ground(&self) -> Option<GroundEvent> {
        self.atom.as_tuple().map(|t| GroundEvent {
            kind: self.kind,
            pred: self.atom.pred,
            tuple: t.into(),
        })
    }
}

impl fmt::Display for EventAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind.sigil(), self.atom)
    }
}

/// A ground event fact: the unit of transactions and of interpretation
/// results.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroundEvent {
    /// Insertion or deletion.
    pub kind: EventKind,
    /// The affected predicate.
    pub pred: Pred,
    /// The affected tuple.
    pub tuple: Tuple,
}

impl GroundEvent {
    /// Creates a ground event.
    pub fn new(kind: EventKind, pred: Pred, tuple: Tuple) -> GroundEvent {
        debug_assert_eq!(pred.arity, tuple.arity());
        GroundEvent { kind, pred, tuple }
    }

    /// `ins P(c̄)`.
    pub fn ins(pred: Pred, tuple: Tuple) -> GroundEvent {
        GroundEvent::new(EventKind::Ins, pred, tuple)
    }

    /// `del P(c̄)`.
    pub fn del(pred: Pred, tuple: Tuple) -> GroundEvent {
        GroundEvent::new(EventKind::Del, pred, tuple)
    }

    /// The event as a (ground) event atom.
    pub fn to_atom(&self) -> EventAtom {
        EventAtom::new(self.kind, self.tuple.to_atom(self.pred))
    }

    /// The event that would exactly undo this one.
    pub fn inverse(&self) -> GroundEvent {
        GroundEvent::new(self.kind.flipped(), self.pred, self.tuple.clone())
    }
}

impl fmt::Display for GroundEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.kind.sigil(), self.tuple.to_atom(self.pred))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::ast::{Const, Term};
    use dduf_datalog::storage::tuple::syms;

    #[test]
    fn display_matches_transaction_syntax() {
        let e = GroundEvent::del(Pred::new("r", 1), syms(&["b"]));
        assert_eq!(e.to_string(), "-r(b)");
        let i = GroundEvent::ins(Pred::new("works", 2), syms(&["john", "sales"]));
        assert_eq!(i.to_string(), "+works(john, sales)");
    }

    #[test]
    fn event_atom_groundness() {
        let g = EventAtom::ins(Atom::ground("p", vec![Const::sym("a")]));
        assert!(g.to_ground().is_some());
        let ng = EventAtom::ins(Atom::new("p", vec![Term::var("X")]));
        assert!(ng.to_ground().is_none());
    }

    #[test]
    fn inverse_flips_kind() {
        let e = GroundEvent::ins(Pred::new("p", 1), syms(&["a"]));
        assert_eq!(e.inverse().kind, EventKind::Del);
        assert_eq!(e.inverse().inverse(), e);
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let a = GroundEvent::ins(Pred::new("p", 1), syms(&["a"]));
        let b = GroundEvent::del(Pred::new("p", 1), syms(&["a"]));
        assert_ne!(a.cmp(&b), std::cmp::Ordering::Equal);
    }
}
