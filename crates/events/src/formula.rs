//! The formula language of transition rules: conjunctions and disjunctive
//! normal forms over *old-database literals* and *event literals* (§3.2).
//!
//! After the substitution of equivalences (3)/(4), a transition-rule body
//! contains only two kinds of literal:
//!
//! * **old literals** `Q°(t̄)` / `¬Q°(t̄)` — queries against the old state;
//! * **event literals** `ins Q(t̄)` / `del Q(t̄)` (possibly negated) — on a
//!   base predicate these query the transaction, on a derived predicate
//!   they refer to the induced events (§4.1/§4.2).
//!
//! New-state literals never appear: they were eliminated by the
//! substitution.

use crate::event::{EventAtom, EventKind};
use dduf_datalog::ast::{Literal, Pred, Term, Var};
use dduf_datalog::eval::join::JoinLit;
use std::fmt;

/// A literal of a transition-rule body.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TrLit {
    /// An old-database literal `Q°(t̄)` (positive) or `¬Q°(t̄)`.
    Old(Literal),
    /// An event literal, positive (`ins Q(t̄)` / `del Q(t̄)`) or negative
    /// (`¬ins Q(t̄)` / `¬del Q(t̄)`).
    Event {
        /// `false` for a negated event literal.
        positive: bool,
        /// The event atom.
        event: EventAtom,
    },
}

impl TrLit {
    /// A positive old literal.
    pub fn old_pos(atom: dduf_datalog::ast::Atom) -> TrLit {
        TrLit::Old(Literal::pos(atom))
    }

    /// A negative old literal.
    pub fn old_neg(atom: dduf_datalog::ast::Atom) -> TrLit {
        TrLit::Old(Literal::neg(atom))
    }

    /// A positive event literal.
    pub fn event(kind: EventKind, atom: dduf_datalog::ast::Atom) -> TrLit {
        TrLit::Event {
            positive: true,
            event: EventAtom::new(kind, atom),
        }
    }

    /// A negative event literal.
    pub fn not_event(kind: EventKind, atom: dduf_datalog::ast::Atom) -> TrLit {
        TrLit::Event {
            positive: false,
            event: EventAtom::new(kind, atom),
        }
    }

    /// The predicate the literal is about.
    pub fn pred(&self) -> Pred {
        match self {
            TrLit::Old(l) => l.atom.pred,
            TrLit::Event { event, .. } => event.pred(),
        }
    }

    /// The literal's argument terms.
    pub fn lit_terms(&self) -> &[Term] {
        match self {
            TrLit::Old(l) => &l.atom.terms,
            TrLit::Event { event, .. } => &event.atom.terms,
        }
    }

    /// Whether the literal occurs positively.
    pub fn is_positive(&self) -> bool {
        match self {
            TrLit::Old(l) => l.positive,
            TrLit::Event { positive, .. } => *positive,
        }
    }

    /// True iff this is an event literal (of either sign).
    pub fn is_event(&self) -> bool {
        matches!(self, TrLit::Event { .. })
    }

    /// True iff this is a *positive* event literal — the only kind that can
    /// drive a change (a conjunct without one cannot derive a new tuple;
    /// see `simplify`).
    pub fn is_positive_event(&self) -> bool {
        matches!(self, TrLit::Event { positive: true, .. })
    }

    /// The logical complement.
    pub fn negated(&self) -> TrLit {
        match self {
            TrLit::Old(l) => TrLit::Old(l.negated()),
            TrLit::Event { positive, event } => TrLit::Event {
                positive: !positive,
                event: event.clone(),
            },
        }
    }
}

impl JoinLit for TrLit {
    fn positive(&self) -> bool {
        self.is_positive()
    }
    fn terms(&self) -> &[Term] {
        self.lit_terms()
    }
}

impl fmt::Display for TrLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrLit::Old(l) => {
                if !l.positive {
                    write!(f, "not ")?;
                }
                write!(f, "{}ᵒ", l.atom.pred.name)?;
                fmt_args(f, &l.atom.terms)
            }
            TrLit::Event { positive, event } => {
                if !positive {
                    write!(f, "not ")?;
                }
                let kw = match event.kind {
                    EventKind::Ins => "ins",
                    EventKind::Del => "del",
                };
                write!(f, "{kw} {}", event.atom.pred.name)?;
                fmt_args(f, &event.atom.terms)
            }
        }
    }
}

fn fmt_args(f: &mut fmt::Formatter<'_>, terms: &[Term]) -> fmt::Result {
    if terms.is_empty() {
        return Ok(());
    }
    write!(f, "(")?;
    for (i, t) in terms.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{t}")?;
    }
    write!(f, ")")
}

/// A conjunction of transition literals (one disjunctand of a transition
/// rule body).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Conjunct(pub Vec<TrLit>);

impl Conjunct {
    /// The variables occurring in the conjunct, first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for lit in &self.0 {
            for t in lit.lit_terms() {
                if let Term::Var(v) = t {
                    if !out.contains(v) {
                        out.push(*v);
                    }
                }
            }
        }
        out
    }

    /// True iff some literal is a positive event literal.
    pub fn has_positive_event(&self) -> bool {
        self.0.iter().any(TrLit::is_positive_event)
    }

    /// True iff no literal is an event literal at all (an "all-old"
    /// disjunctand).
    pub fn is_event_free(&self) -> bool {
        !self.0.iter().any(TrLit::is_event)
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "true");
        }
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// A disjunctive normal form over transition literals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Dnf(pub Vec<Conjunct>);

impl Dnf {
    /// The always-false DNF.
    pub fn falsum() -> Dnf {
        Dnf(vec![])
    }

    /// The always-true DNF (one empty conjunct).
    pub fn verum() -> Dnf {
        Dnf(vec![Conjunct::default()])
    }

    /// True iff this DNF is syntactically false (no disjunct).
    pub fn is_false(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff no disjuncts.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "false");
        }
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::ast::Atom;

    fn atom(name: &str, vars: &[&str]) -> Atom {
        Atom::new(name, vars.iter().map(|v| Term::var(v)).collect())
    }

    #[test]
    fn display_matches_paper_shape() {
        // Qᵒ(x) ∧ not del q(x) ∧ ins r(x)
        let c = Conjunct(vec![
            TrLit::old_pos(atom("q", &["X"])),
            TrLit::not_event(EventKind::Del, atom("q", &["X"])),
            TrLit::event(EventKind::Ins, atom("r", &["X"])),
        ]);
        assert_eq!(c.to_string(), "qᵒ(X) ∧ not del q(X) ∧ ins r(X)");
    }

    #[test]
    fn positive_event_detection() {
        let c = Conjunct(vec![
            TrLit::old_pos(atom("q", &["X"])),
            TrLit::not_event(EventKind::Del, atom("q", &["X"])),
        ]);
        assert!(!c.has_positive_event());
        assert!(!c.is_event_free());
        let c2 = Conjunct(vec![TrLit::old_pos(atom("q", &["X"]))]);
        assert!(c2.is_event_free());
    }

    #[test]
    fn negation_involutive() {
        let l = TrLit::event(EventKind::Del, atom("r", &["X"]));
        assert_eq!(l.negated().negated(), l);
        assert!(!l.negated().is_positive());
    }

    #[test]
    fn join_lit_impl() {
        use dduf_datalog::eval::join::JoinLit;
        let l = TrLit::not_event(EventKind::Ins, atom("r", &["X"]));
        assert!(!l.positive());
        assert_eq!(l.terms().len(), 1);
    }

    #[test]
    fn conjunct_vars() {
        let c = Conjunct(vec![
            TrLit::old_pos(atom("q", &["X", "Y"])),
            TrLit::event(EventKind::Ins, atom("r", &["Y", "Z"])),
        ]);
        let names: Vec<&str> = c.vars().iter().map(|v| v.name().as_str()).collect();
        assert_eq!(names, vec!["X", "Y", "Z"]);
    }

    #[test]
    fn dnf_display() {
        assert_eq!(Dnf::falsum().to_string(), "false");
        assert_eq!(Dnf::verum().to_string(), "(true)");
    }
}
