//! Simplification of transition and event rules.
//!
//! §3.3 notes the rules "can be intensively simplified, as described in
//! [Oli91, UO92, UO94]". This module implements the logic-level core of
//! those simplifications; each transformation is justified next to its
//! code. All transformations preserve the set of transitions that satisfy
//! the formula (they are equivalences under the event definitions (1)/(2)),
//! except [`for_insertion`], which is only equivalent *in the context of
//! rule (6)* — see its documentation.

use crate::event::EventKind;
use crate::formula::{Conjunct, Dnf, TrLit};
use crate::transition::{TransitionBranch, TransitionRule};
use dduf_datalog::ast::Literal;

/// Simplifies one conjunct. Returns `None` if the conjunct is
/// unsatisfiable.
///
/// Sound transformations used (with `E` the event definitions (1)/(2)):
///
/// 1. *Duplicate elimination*: `L ∧ L ≡ L`.
/// 2. *Complement contradiction*: `L ∧ ¬L ≡ false` (same literal with both
///    signs, for old and event literals alike).
/// 3. *Ins/Del exclusion*: `ins Q(t̄) ∧ del Q(t̄) ≡ false` — by (1)/(2) the
///    former requires `¬Q°(t̄)`, the latter `Q°(t̄)`.
/// 4. *Event/old contradiction*: `ins Q(t̄) ∧ Q°(t̄) ≡ false` and
///    `del Q(t̄) ∧ ¬Q°(t̄) ≡ false` — immediate from (1)/(2).
/// 5. *Implied-old elimination*: given `ins Q(t̄)`, the literal `¬Q°(t̄)` is
///    implied and removable; given `del Q(t̄)`, `Q°(t̄)` is removable.
///
/// The checks are syntactic (identical argument term lists), so they are
/// sound also for non-ground conjuncts: identical terms denote the same
/// instances under every substitution.
pub fn simplify_conjunct(c: &Conjunct) -> Option<Conjunct> {
    let mut lits: Vec<TrLit> = Vec::with_capacity(c.0.len());
    for l in &c.0 {
        if !lits.contains(l) {
            lits.push(l.clone());
        }
    }

    // Rule 2: complement contradiction.
    for l in &lits {
        if lits.contains(&l.negated()) {
            return None;
        }
    }

    // Rules 3/4: cross-literal contradictions via positive events.
    for l in &lits {
        if let TrLit::Event {
            positive: true,
            event,
        } = l
        {
            let opposite = TrLit::Event {
                positive: true,
                event: crate::event::EventAtom::new(event.kind.flipped(), event.atom.clone()),
            };
            if lits.contains(&opposite) {
                return None; // rule 3
            }
            let contradicting_old = match event.kind {
                EventKind::Ins => TrLit::Old(Literal::pos(event.atom.clone())),
                EventKind::Del => TrLit::Old(Literal::neg(event.atom.clone())),
            };
            if lits.contains(&contradicting_old) {
                return None; // rule 4
            }
        }
    }

    // Rule 5: drop old literals implied by a positive event.
    let implied: Vec<TrLit> = lits
        .iter()
        .filter_map(|l| match l {
            TrLit::Event {
                positive: true,
                event,
            } => Some(match event.kind {
                EventKind::Ins => TrLit::Old(Literal::neg(event.atom.clone())),
                EventKind::Del => TrLit::Old(Literal::pos(event.atom.clone())),
            }),
            _ => None,
        })
        .collect();
    lits.retain(|l| !implied.contains(l));

    Some(Conjunct(lits))
}

/// Above this disjunct count the (quadratic) subsumption pass of
/// [`simplify_dnf`] is skipped; conjunct-level simplification and
/// deduplication still run. Rule bodies long enough to exceed this are
/// pathological (2^10 disjuncts ≈ a 10-literal body).
const SUBSUMPTION_LIMIT: usize = 1024;

/// Simplifies a DNF: simplifies each conjunct, drops unsatisfiable ones,
/// deduplicates, and removes subsumed disjuncts (`c₁ ∨ c₂ ≡ c₁` when
/// `c₁ ⊆ c₂`, i.e. every literal of `c₁` occurs in `c₂`). The subsumption
/// pass is quadratic and is skipped above 1024 disjuncts.
pub fn simplify_dnf(dnf: &Dnf) -> Dnf {
    let mut seen = std::collections::BTreeSet::new();
    let mut out: Vec<Conjunct> = Vec::new();
    for c in &dnf.0 {
        if let Some(s) = simplify_conjunct(c) {
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
    }
    if out.len() > SUBSUMPTION_LIMIT {
        return Dnf(out);
    }
    // Subsumption: drop any conjunct that is a superset of another.
    let subsumed: Vec<bool> = out
        .iter()
        .enumerate()
        .map(|(i, c)| {
            out.iter().enumerate().any(|(j, d)| {
                i != j
                    && d.0.len() <= c.0.len()
                    && d.0.iter().all(|l| c.0.contains(l))
                    && !(d.0.len() == c.0.len() && j > i) // keep the first of equals
            })
        })
        .collect();
    Dnf(out
        .into_iter()
        .zip(subsumed)
        .filter_map(|(c, s)| (!s).then_some(c))
        .collect())
}

/// Restricts a transition DNF to the disjuncts able to derive a *new*
/// tuple: those containing at least one positive event literal.
///
/// Justification: a disjunct with no positive event literal consists of old
/// literals, and negative event literals. Its old part is exactly the rule's
/// old body (every literal of the source rule contributes its old form), so
/// whenever it holds, `P°` already held — and rule (6) conjoins `¬P°`,
/// making the disjunct's contribution to `ins P` empty. Only valid in the
/// insertion-event-rule context.
pub fn for_insertion(dnf: &Dnf) -> Dnf {
    Dnf(dnf
        .0
        .iter()
        .filter(|c| c.has_positive_event())
        .cloned()
        .collect())
}

/// Simplifies every branch of a transition rule.
pub fn simplify_transition(tr: &TransitionRule) -> TransitionRule {
    TransitionRule {
        pred: tr.pred,
        branches: tr
            .branches
            .iter()
            .map(|b| TransitionBranch {
                head: b.head.clone(),
                dnf: simplify_dnf(&b.dnf),
                source: b.source.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::ast::{Atom, Term};

    fn atom(name: &str, vars: &[&str]) -> Atom {
        Atom::new(name, vars.iter().map(|v| Term::var(v)).collect())
    }

    #[test]
    fn duplicate_literals_removed() {
        let c = Conjunct(vec![
            TrLit::old_pos(atom("q", &["X"])),
            TrLit::old_pos(atom("q", &["X"])),
        ]);
        assert_eq!(simplify_conjunct(&c).unwrap().0.len(), 1);
    }

    #[test]
    fn complement_contradiction_dropped() {
        let c = Conjunct(vec![
            TrLit::event(EventKind::Ins, atom("q", &["X"])),
            TrLit::not_event(EventKind::Ins, atom("q", &["X"])),
        ]);
        assert!(simplify_conjunct(&c).is_none());
    }

    #[test]
    fn ins_and_del_same_atom_contradict() {
        let c = Conjunct(vec![
            TrLit::event(EventKind::Ins, atom("q", &["X"])),
            TrLit::event(EventKind::Del, atom("q", &["X"])),
        ]);
        assert!(simplify_conjunct(&c).is_none());
    }

    #[test]
    fn event_old_contradiction() {
        // ins q(X) ∧ q°(X) is false.
        let c = Conjunct(vec![
            TrLit::event(EventKind::Ins, atom("q", &["X"])),
            TrLit::old_pos(atom("q", &["X"])),
        ]);
        assert!(simplify_conjunct(&c).is_none());
        // del q(X) ∧ ¬q°(X) is false.
        let c = Conjunct(vec![
            TrLit::event(EventKind::Del, atom("q", &["X"])),
            TrLit::old_neg(atom("q", &["X"])),
        ]);
        assert!(simplify_conjunct(&c).is_none());
    }

    #[test]
    fn implied_old_literal_removed() {
        // ins q(X) ∧ ¬q°(X)  ≡  ins q(X)
        let c = Conjunct(vec![
            TrLit::event(EventKind::Ins, atom("q", &["X"])),
            TrLit::old_neg(atom("q", &["X"])),
        ]);
        let s = simplify_conjunct(&c).unwrap();
        assert_eq!(s.0.len(), 1);
        assert!(s.0[0].is_positive_event());
    }

    #[test]
    fn distinct_terms_not_confused() {
        // ins q(X) ∧ q°(Y) is satisfiable (different instances).
        let c = Conjunct(vec![
            TrLit::event(EventKind::Ins, atom("q", &["X"])),
            TrLit::old_pos(atom("q", &["Y"])),
        ]);
        assert_eq!(simplify_conjunct(&c).unwrap().0.len(), 2);
    }

    #[test]
    fn dnf_subsumption() {
        // (a°) ∨ (a° ∧ ins b)  ≡  (a°)
        let dnf = Dnf(vec![
            Conjunct(vec![TrLit::old_pos(atom("a", &[]))]),
            Conjunct(vec![
                TrLit::old_pos(atom("a", &[])),
                TrLit::event(EventKind::Ins, atom("b", &[])),
            ]),
        ]);
        let s = simplify_dnf(&dnf);
        assert_eq!(s.len(), 1);
        assert_eq!(s.0[0].0.len(), 1);
    }

    #[test]
    fn dnf_duplicate_conjuncts_merged() {
        let c = Conjunct(vec![TrLit::old_pos(atom("a", &[]))]);
        let s = simplify_dnf(&Dnf(vec![c.clone(), c]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn for_insertion_prunes_eventless() {
        use dduf_datalog::ast::{Literal, Rule};
        use dduf_datalog::schema::Program;
        let mut b = Program::builder();
        b.rule(Rule::new(
            atom("p", &["X"]),
            vec![
                Literal::pos(atom("q", &["X"])),
                Literal::neg(atom("r", &["X"])),
            ],
        ));
        let prog = b.build().unwrap();
        let tr =
            crate::transition::TransitionRule::build(&prog, dduf_datalog::ast::Pred::new("p", 1));
        let pruned = for_insertion(&tr.branches[0].dnf);
        // The all-old disjunct is dropped; 3 remain.
        assert_eq!(pruned.len(), 3);
        assert!(pruned.0.iter().all(Conjunct::has_positive_event));
    }

    #[test]
    fn simplify_transition_keeps_heads() {
        use dduf_datalog::ast::{Literal, Rule};
        use dduf_datalog::schema::Program;
        let mut b = Program::builder();
        b.rule(Rule::new(
            atom("p", &["X"]),
            vec![Literal::pos(atom("q", &["X"]))],
        ));
        let prog = b.build().unwrap();
        let tr =
            crate::transition::TransitionRule::build(&prog, dduf_datalog::ast::Pred::new("p", 1));
        let s = simplify_transition(&tr);
        assert_eq!(s.branches[0].head, tr.branches[0].head);
        assert!(s.disjunct_count() <= tr.disjunct_count());
    }
}
