//! Insertion and deletion event rules (§3.3).
//!
//! For each derived predicate `P`:
//!
//! ```text
//! (6)  ins P(x̄) ↔ Pⁿ(x̄) ∧ ¬P°(x̄)
//! (7)  del P(x̄) ↔ P°(x̄) ∧ ¬Pⁿ(x̄)
//! ```
//!
//! where `Pⁿ` refers to the transition rule of `P` and `P°` to the old
//! state. Both interpretations of the framework (upward: §4.1, downward:
//! §4.2) are *readings* of these same rules — this module only represents
//! them; the interpreters live in `dduf-core`.

use crate::formula::{Conjunct, TrLit};
use crate::transition::TransitionRule;
use dduf_datalog::ast::{Atom, Pred};
use dduf_datalog::schema::Program;
use std::collections::BTreeMap;

/// The pair of event rules of one derived predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EventRules {
    /// The derived predicate `P`.
    pub pred: Pred,
    /// The transition rule defining `Pⁿ`.
    pub transition: TransitionRule,
}

impl EventRules {
    /// Builds the event rules of `pred` from its definition.
    pub fn build(program: &Program, pred: Pred) -> EventRules {
        EventRules {
            pred,
            transition: TransitionRule::build(program, pred),
        }
    }

    /// The insertion event rule as executable disjuncts: for each
    /// transition disjunct with head `h` and body `c`, the conjunct
    /// `c ∧ ¬P°(h)` (rule (6) with `Pⁿ` unfolded). Any disjunct true in
    /// the transition implies `Pⁿ`, and `¬P°` is appended literally.
    pub fn insertion_disjuncts(&self) -> Vec<(Atom, Conjunct)> {
        self.transition
            .disjuncts()
            .map(|(head, c)| {
                let mut lits = c.0.clone();
                lits.push(TrLit::old_neg(head.clone()));
                (head.clone(), Conjunct(lits))
            })
            .collect()
    }

    /// The deletion event rule (7) cannot be unfolded into a DNF of the
    /// same literals — `¬Pⁿ` is the negation of the whole transition DNF.
    /// Engines therefore treat deletion as `P°(x̄)` minus the tuples for
    /// which some transition disjunct holds; this accessor exposes the
    /// transition rule they must refute.
    pub fn transition(&self) -> &TransitionRule {
        &self.transition
    }
}

/// The event rules of every derived predicate of a program.
#[derive(Clone, Debug, Default)]
pub struct EventRuleSystem {
    rules: BTreeMap<Pred, EventRules>,
}

impl EventRuleSystem {
    /// Builds event rules for all derived predicates.
    pub fn build(program: &Program) -> EventRuleSystem {
        let mut rules = BTreeMap::new();
        for (pred, role) in program.predicates() {
            if matches!(role, dduf_datalog::schema::Role::Derived(_)) {
                rules.insert(pred, EventRules::build(program, pred));
            }
        }
        EventRuleSystem { rules }
    }

    /// The event rules of `pred`, if derived.
    pub fn get(&self, pred: Pred) -> Option<&EventRules> {
        self.rules.get(&pred)
    }

    /// All event rules in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Pred, &EventRules)> + '_ {
        self.rules.iter()
    }

    /// Number of derived predicates covered.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff there are no derived predicates.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dduf_datalog::ast::{Literal, Rule, Term};

    fn atom(name: &str, vars: &[&str]) -> Atom {
        Atom::new(name, vars.iter().map(|v| Term::var(v)).collect())
    }

    fn example_program() -> Program {
        let mut b = Program::builder();
        b.rule(Rule::new(
            atom("p", &["X"]),
            vec![
                Literal::pos(atom("q", &["X"])),
                Literal::neg(atom("r", &["X"])),
            ],
        ));
        b.build().unwrap()
    }

    #[test]
    fn insertion_disjuncts_append_not_old_head() {
        let prog = example_program();
        let er = EventRules::build(&prog, Pred::new("p", 1));
        let ds = er.insertion_disjuncts();
        assert_eq!(ds.len(), 4);
        for (_, c) in &ds {
            let last = c.0.last().unwrap();
            assert_eq!(last.to_string(), "not pᵒ(X)");
        }
    }

    #[test]
    fn system_covers_all_derived() {
        let mut b = Program::builder();
        b.rule(Rule::new(
            atom("v", &["X"]),
            vec![Literal::pos(atom("b", &["X"]))],
        ));
        b.rule(Rule::new(
            Atom::new("ic1", vec![]),
            vec![Literal::pos(atom("v", &["X"]))],
        ));
        let prog = b.build().unwrap();
        let sys = EventRuleSystem::build(&prog);
        // v, ic1, global ic
        assert_eq!(sys.len(), 3);
        assert!(sys.get(Pred::new("v", 1)).is_some());
        assert!(sys.get(Pred::new("ic", 0)).is_some());
        assert!(sys.get(Pred::new("b", 1)).is_none());
    }
}
