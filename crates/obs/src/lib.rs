//! Structured tracing and deterministic metrics for the updating
//! framework.
//!
//! Every execution layer — datalog fixpoint evaluation, the upward and
//! downward interpretations, the durable journal — shares one
//! instrumentation surface: a [`Span`] is a named phase plus a bag of
//! typed counters, reported through whatever [`Recorder`] is installed
//! on the *current thread*. With no recorder installed (the default)
//! every call site reduces to one thread-local `is_some()` check, so
//! tracing costs nothing on the hot path.
//!
//! The central design rule, inherited from the parallel evaluator
//! (DESIGN.md §10–§11): recording happens only on the orchestrating
//! thread. Worker jobs return plain counter structs which the
//! sequential merge code records, so the recorder needs no
//! synchronization (`Rc`, not `Arc`) and — more importantly — every
//! *semantic* counter (everything except wall time) is bit-identical at
//! any worker count. [`Report::semantic_fingerprint`] projects exactly
//! that deterministic subset; the test suite and CI diff it across
//! thread counts.

#![forbid(unsafe_code)]
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One recorded event: a static phase ID, a dynamic label (component
/// key, predicate name, …), typed counters, and an optional wall time.
///
/// Phases use dotted names grouping a subsystem and a step, e.g.
/// `eval.scc`, `upward.apply`, `journal.append`. Counter names are
/// static so a collector can aggregate without allocation surprises.
pub struct Span<'a> {
    /// Static phase identifier (`eval.materialize`, `journal.append`, …).
    pub phase: &'static str,
    /// Instance label within the phase (`tc/2`, a predicate, or `""`).
    pub label: &'a str,
    /// Typed counters carried by this span.
    pub counters: &'a [(&'static str, u64)],
    /// Wall time in microseconds, if the caller timed the span.
    /// Non-deterministic: excluded from fingerprints and JSON by default.
    pub time_us: Option<u64>,
}

/// Sink for spans. The default [`report`](Recorder::report) returns
/// `None`, so a recorder that only forwards spans elsewhere needs no
/// extra code.
pub trait Recorder {
    /// Receives one span. Called on the thread the recorder is
    /// installed on; implementations need no internal synchronization.
    fn record(&self, span: &Span<'_>);

    /// Current aggregated report, if this recorder keeps one.
    fn report(&self) -> Option<Report> {
        None
    }
}

/// Recorder that drops every span. Installing it is equivalent to (and
/// no cheaper than) installing nothing; it exists so call sites that
/// *require* a recorder value have an explicit do-nothing choice.
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _span: &Span<'_>) {}
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<dyn Recorder>>> = const { RefCell::new(None) };
}

/// True when a recorder is installed on this thread. Instrumented code
/// checks this once before assembling expensive labels or per-round
/// detail.
pub fn enabled() -> bool {
    CURRENT.with(|cur| cur.borrow().is_some())
}

/// Records a span with no wall time. A no-op unless a recorder is
/// installed on this thread.
pub fn record(phase: &'static str, label: &str, counters: &[(&'static str, u64)]) {
    record_timed(phase, label, counters, None);
}

/// Records a span, optionally carrying a wall time (microseconds).
pub fn record_timed(
    phase: &'static str,
    label: &str,
    counters: &[(&'static str, u64)],
    time_us: Option<u64>,
) {
    CURRENT.with(|cur| {
        if let Some(rec) = cur.borrow().as_ref() {
            rec.record(&Span {
                phase,
                label,
                counters,
                time_us,
            });
        }
    });
}

/// Wall-clock timer that only ticks while a recorder is installed, so
/// untraced runs never touch the clock.
pub struct Timer(Option<Instant>);

/// Starts a [`Timer`] (a no-op value when tracing is disabled).
pub fn timer() -> Timer {
    Timer(enabled().then(Instant::now))
}

impl Timer {
    /// Elapsed microseconds, or `None` when tracing was disabled at
    /// construction time.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.0
            .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

/// Guard returned by [`install`]; restores the previously installed
/// recorder (possibly none) when dropped.
pub struct InstallGuard {
    previous: Option<Rc<dyn Recorder>>,
    restored: bool,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if !self.restored {
            self.restored = true;
            let prev = self.previous.take();
            CURRENT.with(|cur| *cur.borrow_mut() = prev);
        }
    }
}

/// Installs `recorder` as this thread's span sink until the returned
/// guard is dropped.
pub fn install(recorder: Rc<dyn Recorder>) -> InstallGuard {
    let previous = CURRENT.with(|cur| cur.borrow_mut().replace(recorder));
    InstallGuard {
        previous,
        restored: false,
    }
}

/// Runs `f` under a fresh [`Collector`] and returns its result together
/// with the aggregated [`Report`]. The previously installed recorder
/// (if any) is restored afterwards and does **not** see the spans.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Report) {
    let collector = Rc::new(Collector::new());
    let guard = install(collector.clone());
    let out = f();
    drop(guard);
    (out, collector.report_now())
}

/// Non-destructive snapshot of the currently installed recorder's
/// report, if it keeps one (the shell's `:stats` command).
pub fn snapshot() -> Option<Report> {
    CURRENT.with(|cur| cur.borrow().as_ref().and_then(|rec| rec.report()))
}

/// Folds one span into an aggregation map — the single merge rule shared
/// by [`Collector`] (single-threaded) and [`SharedCollector`]
/// (multi-threaded).
fn merge_span(spans: &mut BTreeMap<(String, String), ReportNode>, span: &Span<'_>) {
    let node = spans
        .entry((span.phase.to_string(), span.label.to_string()))
        .or_default();
    node.count += 1;
    for &(name, value) in span.counters {
        *node.counters.entry(name.to_string()).or_insert(0) += value;
    }
    node.time_us += span.time_us.unwrap_or(0);
}

/// In-memory structured collector: aggregates spans by `(phase, label)`
/// — counts, summed counters, summed wall time.
#[derive(Default)]
pub struct Collector {
    inner: RefCell<BTreeMap<(String, String), ReportNode>>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// The report aggregated so far.
    pub fn report_now(&self) -> Report {
        Report {
            spans: self.inner.borrow().clone(),
        }
    }
}

impl Recorder for Collector {
    fn record(&self, span: &Span<'_>) {
        merge_span(&mut self.inner.borrow_mut(), span);
    }

    fn report(&self) -> Option<Report> {
        Some(self.report_now())
    }
}

/// A thread-*safe* collector for subsystems whose work spans threads —
/// the `dduf serve` writer and its session handlers all feed one of
/// these. Unlike [`Collector`] (whose `RefCell` pins it to the thread it
/// was installed on), a `SharedCollector` lives behind an `Arc` and each
/// participating thread installs a lightweight handle to it via
/// [`install_shared`].
///
/// The single-writer recording rule that makes *evaluation* counters
/// deterministic (module docs) is unchanged — each evaluation still
/// records only on its orchestrating thread. What this type adds is a
/// place for *independent* orchestrating threads (one per client
/// session, plus the writer) to aggregate into one report. Counters
/// summed here are deterministic per run of a deterministic workload;
/// their interleaving never matters because merging is commutative.
#[derive(Default)]
pub struct SharedCollector {
    inner: Mutex<BTreeMap<(String, String), ReportNode>>,
}

impl SharedCollector {
    /// Creates an empty shared collector.
    pub fn new() -> SharedCollector {
        SharedCollector::default()
    }

    /// The report aggregated so far across every participating thread.
    pub fn report_now(&self) -> Report {
        Report {
            spans: self.inner.lock().expect("collector lock").clone(),
        }
    }
}

/// Per-thread handle forwarding spans to a [`SharedCollector`].
struct SharedHandle(Arc<SharedCollector>);

impl Recorder for SharedHandle {
    fn record(&self, span: &Span<'_>) {
        merge_span(&mut self.0.inner.lock().expect("collector lock"), span);
    }

    fn report(&self) -> Option<Report> {
        Some(self.0.report_now())
    }
}

/// Installs `collector` as the *current thread's* span sink until the
/// returned guard is dropped. Call once per participating thread; every
/// thread's spans aggregate into the same report.
pub fn install_shared(collector: &Arc<SharedCollector>) -> InstallGuard {
    install(Rc::new(SharedHandle(collector.clone())))
}

/// Aggregate for one `(phase, label)` key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReportNode {
    /// Number of spans recorded under this key.
    pub count: u64,
    /// Counter sums, keyed by counter name.
    pub counters: BTreeMap<String, u64>,
    /// Summed wall time (µs). Non-deterministic; zero when untimed.
    pub time_us: u64,
}

/// Aggregated run report: every `(phase, label)` with its counts,
/// counter sums, and wall times. Ordered (`BTreeMap`), so rendering and
/// fingerprints are stable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    spans: BTreeMap<(String, String), ReportNode>,
}

impl Report {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of spans recorded under `(phase, label)`.
    pub fn count(&self, phase: &str, label: &str) -> u64 {
        self.node(phase, label).map_or(0, |n| n.count)
    }

    /// Counter sum under `(phase, label)`, or 0 if absent.
    pub fn counter(&self, phase: &str, label: &str, name: &str) -> u64 {
        self.node(phase, label)
            .and_then(|n| n.counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Counter sum across every label of `phase`.
    pub fn total(&self, phase: &str, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|((p, _), _)| p == phase)
            .filter_map(|(_, n)| n.counters.get(name))
            .sum()
    }

    /// Iterates `(phase, label, node)` in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &ReportNode)> {
        self.spans
            .iter()
            .map(|((p, l), n)| (p.as_str(), l.as_str(), n))
    }

    fn node(&self, phase: &str, label: &str) -> Option<&ReportNode> {
        self.spans.get(&(phase.to_string(), label.to_string()))
    }

    /// Stable projection of the deterministic subset: every phase,
    /// label, span count, and counter sum — wall times excluded. Two
    /// runs of the same work at different thread counts must produce
    /// byte-identical fingerprints; the suite and CI assert exactly
    /// that.
    pub fn semantic_fingerprint(&self) -> String {
        let mut out = String::new();
        for ((phase, label), node) in &self.spans {
            let _ = write!(out, "{phase}|{label}|x{}|", node.count);
            for (i, (name, value)) in node.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{name}={value}");
            }
            out.push('\n');
        }
        out
    }

    /// Human-readable per-phase tree. Counters are deterministic; wall
    /// times (marked `~`) are not and vary run to run.
    pub fn render_text(&self) -> String {
        if self.is_empty() {
            return "trace: no spans recorded\n".to_string();
        }
        let mut out = String::from(
            "trace report (counters are deterministic; ~times are wall-clock and are not)\n",
        );
        let mut last_phase = "";
        for ((phase, label), node) in &self.spans {
            if phase != last_phase {
                let _ = writeln!(out, "{phase}");
                last_phase = phase;
            }
            let name = if label.is_empty() {
                "·"
            } else {
                label.as_str()
            };
            let _ = write!(out, "  {name}  x{}", node.count);
            for (cname, value) in &node.counters {
                let _ = write!(out, "  {cname}={value}");
            }
            if node.time_us > 0 {
                let _ = write!(out, "  ~{}us", node.time_us);
            }
            out.push('\n');
        }
        out
    }

    /// Hand-rolled JSON rendering. With `include_time` false (the
    /// default for comparisons) the output contains only semantic
    /// counters and is bit-identical across thread counts.
    pub fn render_json(&self, include_time: bool) -> String {
        let mut out = String::from("{\"dduf_trace\":1,\"semantic_only\":");
        out.push_str(if include_time { "false" } else { "true" });
        out.push_str(",\"phases\":[");
        let mut phases: Vec<&str> = Vec::new();
        for (phase, _, _) in self.iter() {
            if phases.last() != Some(&phase) {
                phases.push(phase);
            }
        }
        for (pi, phase) in phases.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"phase\":{},\"spans\":[", json_string(phase));
            let mut first = true;
            for (p, label, node) in self.iter() {
                if p != *phase {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"label\":{},\"count\":{},\"counters\":{{",
                    json_string(label),
                    node.count
                );
                for (i, (name, value)) in node.counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{value}", json_string(name));
                }
                out.push_str("}}");
                if include_time {
                    // Splice the time in before the span's closing brace.
                    out.pop();
                    let _ = write!(out, ",\"time_us\":{}}}", node.time_us);
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_record_is_a_noop() {
        assert!(!enabled());
        record("eval.scc", "p/1", &[("rounds", 3)]);
        assert!(snapshot().is_none());
        assert!(timer().elapsed_us().is_none());
    }

    #[test]
    fn collector_aggregates_by_phase_and_label() {
        let (_, report) = capture(|| {
            record("eval.scc", "p/1", &[("rounds", 3), ("tuples", 10)]);
            record("eval.scc", "p/1", &[("rounds", 2), ("tuples", 5)]);
            record("eval.scc", "q/2", &[("rounds", 1)]);
            record_timed("journal.append", "", &[("bytes", 64)], Some(7));
        });
        assert_eq!(report.count("eval.scc", "p/1"), 2);
        assert_eq!(report.counter("eval.scc", "p/1", "rounds"), 5);
        assert_eq!(report.counter("eval.scc", "p/1", "tuples"), 15);
        assert_eq!(report.total("eval.scc", "rounds"), 6);
        assert_eq!(report.counter("journal.append", "", "bytes"), 64);
        assert_eq!(report.counter("missing", "", "x"), 0);
        assert!(!report.is_empty());
    }

    #[test]
    fn install_guard_restores_previous_recorder() {
        let outer = Rc::new(Collector::new());
        let guard = install(outer.clone());
        record("a", "", &[("n", 1)]);
        {
            let (_, inner) = capture(|| record("b", "", &[("n", 2)]));
            assert_eq!(inner.counter("b", "", "n"), 2);
            assert_eq!(inner.counter("a", "", "n"), 0);
        }
        // Outer recorder is back in place and never saw the inner span.
        record("a", "", &[("n", 1)]);
        drop(guard);
        assert!(!enabled());
        let report = outer.report_now();
        assert_eq!(report.counter("a", "", "n"), 2);
        assert_eq!(report.counter("b", "", "n"), 0);
    }

    #[test]
    fn fingerprint_excludes_time_and_is_stable() {
        let (_, fast) = capture(|| {
            record_timed("eval.scc", "p/1", &[("rounds", 3)], Some(1));
            record("eval.round", "p/1#r0", &[("delta", 4)]);
        });
        let (_, slow) = capture(|| {
            record_timed("eval.scc", "p/1", &[("rounds", 3)], Some(99_999));
            record("eval.round", "p/1#r0", &[("delta", 4)]);
        });
        assert_eq!(fast.semantic_fingerprint(), slow.semantic_fingerprint());
        assert!(fast
            .semantic_fingerprint()
            .contains("eval.scc|p/1|x1|rounds=3"));
    }

    #[test]
    fn text_report_marks_times_as_nondeterministic() {
        let (_, report) = capture(|| {
            record_timed("snapshot.write", "", &[("bytes", 128)], Some(42));
        });
        let text = report.render_text();
        assert!(text.contains("snapshot.write"));
        assert!(text.contains("bytes=128"));
        assert!(text.contains("~42us"));
        assert!(text.starts_with("trace report"));
        let empty = Report::default().render_text();
        assert_eq!(empty, "trace: no spans recorded\n");
    }

    #[test]
    fn json_shape_and_time_exclusion() {
        let (_, report) = capture(|| {
            record_timed("eval.materialize", "", &[("facts", 12)], Some(5));
            record("eval.scc", "p\"x/1", &[("rounds", 1)]);
        });
        let json = report.render_json(false);
        assert!(json.starts_with("{\"dduf_trace\":1,\"semantic_only\":true,\"phases\":["));
        assert!(json.contains("{\"phase\":\"eval.materialize\",\"spans\":["));
        assert!(json.contains("\"counters\":{\"facts\":12}"));
        assert!(!json.contains("time_us"));
        assert!(json.contains("\"label\":\"p\\\"x/1\""));
        assert!(json.ends_with("]}\n"));
        let timed = report.render_json(true);
        assert!(timed.contains("\"semantic_only\":false"));
        assert!(timed.contains("\"time_us\":5"));
    }

    #[test]
    fn shared_collector_aggregates_across_threads() {
        let shared = Arc::new(SharedCollector::new());
        std::thread::scope(|scope| {
            for i in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    let _guard = install_shared(shared);
                    record("server.session", "", &[("sessions", 1)]);
                    record("server.batch", "", &[("requests", i + 1)]);
                });
            }
        });
        let report = shared.report_now();
        assert_eq!(report.count("server.session", ""), 4);
        assert_eq!(report.counter("server.session", "", "sessions"), 4);
        assert_eq!(
            report.counter("server.batch", "", "requests"),
            1 + 2 + 3 + 4
        );
        // Guards dropped: none of the threads' recorders leaked here.
        assert!(!enabled());
    }

    #[test]
    fn json_is_balanced() {
        let (_, report) = capture(|| {
            record("a.b", "l1", &[("x", 1)]);
            record("a.b", "l2", &[("y", 2)]);
            record("c.d", "", &[]);
        });
        for json in [report.render_json(false), report.render_json(true)] {
            let mut depth = 0i64;
            let mut in_str = false;
            let mut escape = false;
            for c in json.chars() {
                if escape {
                    escape = false;
                    continue;
                }
                match c {
                    '\\' if in_str => escape = true,
                    '"' => in_str = !in_str,
                    '{' | '[' if !in_str => depth += 1,
                    '}' | ']' if !in_str => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0);
            }
            assert_eq!(depth, 0, "unbalanced: {json}");
            assert!(!in_str);
        }
    }
}
