//! Crash-injection suite for the persistence subsystem (DESIGN.md §9).
//!
//! The kill-anywhere contract: commit N transactions, then simulate a
//! crash by truncating the journal at **every byte offset** of the final
//! record — reopening must recover exactly the N−1 prefix, never a
//! partial transaction. And the converse: damage *inside* the log (a
//! flipped byte) must be a hard corruption error naming the record, not a
//! silent truncation of acknowledged commits.

use dduf::datalog::pretty;
use dduf::persist::{journal, DurableDb, PersistError, JOURNAL_FILE, SNAPSHOT_FILE};
use dduf::prelude::*;
use std::path::{Path, PathBuf};

const SCHEMA: &str = "la(dolors). u_benefit(dolors).
unemp(X) :- la(X), not works(X).
needy(X) :- la(X), not works(X), not u_benefit(X).
";

const TXNS: [&str; 4] = [
    "+la(ana). +works(ana).",
    "+works(dolors).",
    "-u_benefit(dolors). +la(eva).",
    "+u_benefit(eva). -works(ana).",
];

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dduf_durab_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A canonical fingerprint of the full state: extensional database plus
/// materialized derived relations, both in deterministic pretty syntax.
fn fingerprint(proc: &UpdateProcessor) -> String {
    format!(
        "{}--\n{}",
        pretty::database(proc.database()),
        pretty::derived(proc.interpretation())
    )
}

/// The expected fingerprint after committing the first `k` transactions,
/// computed by a plain in-memory processor (no persistence involved).
fn reference_fingerprint(k: usize) -> String {
    let mut proc = UpdateProcessor::new(parse_database(SCHEMA).unwrap()).unwrap();
    for src in &TXNS[..k] {
        let txn = proc.transaction(src).unwrap();
        proc.commit(&txn).unwrap();
    }
    fingerprint(&proc)
}

/// Copies a durable database, truncating its journal to `cut` bytes —
/// the on-disk picture a crash at that byte would leave.
fn crashed_copy(src_dir: &Path, name: &str, cut: u64) -> PathBuf {
    let dst = tmpdir(name);
    std::fs::create_dir_all(&dst).unwrap();
    std::fs::copy(src_dir.join(SNAPSHOT_FILE), dst.join(SNAPSHOT_FILE)).unwrap();
    let mut bytes = std::fs::read(src_dir.join(JOURNAL_FILE)).unwrap();
    bytes.truncate(cut as usize);
    std::fs::write(dst.join(JOURNAL_FILE), bytes).unwrap();
    dst
}

#[test]
fn kill_anywhere_recovers_longest_committed_prefix() {
    let dir = tmpdir("kill_anywhere");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    for src in TXNS {
        let txn = db.transaction(src).unwrap();
        db.commit(&txn).unwrap();
    }
    let full = fingerprint(db.processor());
    assert_eq!(full, reference_fingerprint(TXNS.len()));
    drop(db);

    let journal_path = dir.join(JOURNAL_FILE);
    let scan = journal::scan(&journal_path).unwrap();
    assert_eq!(scan.records.len(), TXNS.len());
    let last_start = scan.records.last().unwrap().offset;
    let file_len = std::fs::metadata(&journal_path).unwrap().len();
    assert_eq!(scan.end, file_len);
    let expect_prefix = reference_fingerprint(TXNS.len() - 1);

    // Crash at every byte of the final record: header bytes, payload
    // bytes, everything — including `cut == last_start` (crash before the
    // first byte landed).
    for cut in last_start..file_len {
        let crash = crashed_copy(&dir, &format!("cut{cut}"), cut);
        let recovered = DurableDb::open(&crash).unwrap();
        assert_eq!(
            fingerprint(recovered.processor()),
            expect_prefix,
            "cut at byte {cut}: state must equal the N-1 prefix"
        );
        assert_eq!(recovered.recovery().replayed, TXNS.len() - 1);
        let torn_bytes = cut - last_start;
        assert_eq!(recovered.recovery().truncated_bytes, torn_bytes);
        // The torn bytes are physically gone: the journal is clean again.
        drop(recovered);
        assert_eq!(
            std::fs::metadata(crash.join(JOURNAL_FILE)).unwrap().len(),
            last_start,
            "cut at byte {cut}: torn tail must be truncated"
        );
        // And the database is fully usable: re-commit the lost
        // transaction and get the original final state back.
        let mut db = DurableDb::open(&crash).unwrap();
        let txn = db.transaction(TXNS[TXNS.len() - 1]).unwrap();
        db.commit(&txn).unwrap();
        assert_eq!(fingerprint(db.processor()), full, "cut at byte {cut}");
        std::fs::remove_dir_all(&crash).unwrap();
    }

    // A cut exactly at the end of the file is no crash at all.
    let whole = crashed_copy(&dir, "cut_none", file_len);
    let recovered = DurableDb::open(&whole).unwrap();
    assert_eq!(fingerprint(recovered.processor()), full);
    assert_eq!(recovered.recovery().truncated_bytes, 0);
    std::fs::remove_dir_all(&whole).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batched_append_crash_recovers_clean_record_prefix() {
    let dir = tmpdir("batch");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    let txn = db.transaction(TXNS[0]).unwrap();
    db.commit(&txn).unwrap();
    drop(db); // releases dduf.lock — we drive the journal directly below

    // Serialize TXNS[1..] exactly as the server's group commit does: one
    // staged processor, one payload per transaction, one batched append
    // (single fsync) covering all of them.
    let mut staged = UpdateProcessor::new(parse_database(SCHEMA).unwrap()).unwrap();
    let txn0 = staged.transaction(TXNS[0]).unwrap();
    staged.commit(&txn0).unwrap();
    let mut payloads = Vec::new();
    for src in &TXNS[1..] {
        let txn = staged.transaction(src).unwrap();
        payloads.push(dduf::persist::serialize_transaction(&txn));
        staged.commit(&txn).unwrap();
    }

    let journal_path = dir.join(JOURNAL_FILE);
    let (mut j, scan) = journal::Journal::open(&journal_path).unwrap();
    assert_eq!(scan.records.len(), 1);
    let batch_start = j.end();
    j.append_batch(&payloads).unwrap();
    drop(j);

    let scan = journal::scan(&journal_path).unwrap();
    assert_eq!(scan.records.len(), TXNS.len());
    let file_len = std::fs::metadata(&journal_path).unwrap().len();
    assert_eq!(scan.end, file_len);
    // End offset of each batch record: the next record's start, or EOF.
    let ends: Vec<u64> = scan
        .records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.offset >= batch_start)
        .map(|(i, _)| scan.records.get(i + 1).map_or(file_len, |n| n.offset))
        .collect();

    // Crash at every byte of the batch region: recovery must land on a
    // clean whole-record prefix of the batch — the durability contract
    // does not change because many records shared one fsync.
    for cut in batch_start..=file_len {
        let complete = ends.iter().filter(|&&e| e <= cut).count();
        let boundary = ends
            .iter()
            .filter(|&&e| e <= cut)
            .max()
            .copied()
            .unwrap_or(batch_start);
        let crash = crashed_copy(&dir, &format!("bcut{cut}"), cut);
        let recovered = DurableDb::open(&crash).unwrap();
        assert_eq!(
            fingerprint(recovered.processor()),
            reference_fingerprint(1 + complete),
            "cut at byte {cut}: state must equal the {complete}-record batch prefix"
        );
        assert_eq!(recovered.recovery().replayed, 1 + complete);
        assert_eq!(recovered.recovery().truncated_bytes, cut - boundary);
        drop(recovered);
        assert_eq!(
            std::fs::metadata(crash.join(JOURNAL_FILE)).unwrap().len(),
            boundary,
            "cut at byte {cut}: torn batch tail must be truncated"
        );
        std::fs::remove_dir_all(&crash).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Copies a durable database including its counts sidecar, truncating
/// the journal to `cut` bytes — the on-disk picture a crash at that
/// byte would leave on a checkpointed database.
fn crashed_copy_with_counts(src_dir: &Path, name: &str, cut: u64) -> PathBuf {
    let dst = crashed_copy(src_dir, name, cut);
    std::fs::copy(
        src_dir.join(dduf::persist::COUNTS_FILE),
        dst.join(dduf::persist::COUNTS_FILE),
    )
    .unwrap();
    dst
}

/// The pipelined writer's journal shape: after a checkpoint, two
/// consecutive `append_batch` calls (batch N fsynced while batch N+1
/// was staging). Crash at **every byte** of that two-batch tail:
/// recovery must land on a clean whole-record prefix, and the counts
/// sidecar written by the checkpoint must keep restoring at every cut
/// — the torn tail is after the snapshot position, so it never
/// invalidates the persisted support counts.
#[test]
fn pipelined_two_batch_tail_crash_sweep_keeps_counts_restore() {
    let dir = tmpdir("pipe_tail");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    let txn = db.transaction(TXNS[0]).unwrap();
    db.commit(&txn).unwrap();
    db.checkpoint().unwrap();
    drop(db); // releases dduf.lock — we drive the journal directly below

    // Serialize TXNS[1..] exactly as the pipelined writer does: staged
    // serially on one processor, split across two batched appends
    // (TXNS[1..3] fsync together, then TXNS[3] in the next batch).
    let mut staged = UpdateProcessor::new(parse_database(SCHEMA).unwrap()).unwrap();
    let txn0 = staged.transaction(TXNS[0]).unwrap();
    staged.commit(&txn0).unwrap();
    let mut payloads = Vec::new();
    for src in &TXNS[1..] {
        let txn = staged.transaction(src).unwrap();
        payloads.push(dduf::persist::serialize_transaction(&txn));
        staged.commit(&txn).unwrap();
    }

    let journal_path = dir.join(JOURNAL_FILE);
    let (mut j, scan) = journal::Journal::open(&journal_path).unwrap();
    assert_eq!(scan.records.len(), 1);
    let tail_start = j.end();
    j.append_batch(&payloads[..2]).unwrap();
    j.append_batch(&payloads[2..]).unwrap();
    drop(j);

    let scan = journal::scan(&journal_path).unwrap();
    assert_eq!(scan.records.len(), TXNS.len());
    let file_len = std::fs::metadata(&journal_path).unwrap().len();
    assert_eq!(scan.end, file_len);
    // End offset of each tail record: the next record's start, or EOF.
    let ends: Vec<u64> = scan
        .records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.offset >= tail_start)
        .map(|(i, _)| scan.records.get(i + 1).map_or(file_len, |n| n.offset))
        .collect();
    assert_eq!(ends.len(), 3);

    for cut in tail_start..=file_len {
        let complete = ends.iter().filter(|&&e| e <= cut).count();
        let boundary = ends
            .iter()
            .filter(|&&e| e <= cut)
            .max()
            .copied()
            .unwrap_or(tail_start);
        let crash = crashed_copy_with_counts(&dir, &format!("pcut{cut}"), cut);
        let recovered = DurableDb::open(&crash).unwrap();
        assert_eq!(
            fingerprint(recovered.processor()),
            reference_fingerprint(1 + complete),
            "cut at byte {cut}: state must equal the {complete}-record tail prefix"
        );
        assert_eq!(recovered.recovery().replayed, complete, "cut {cut}");
        assert_eq!(recovered.recovery().truncated_bytes, cut - boundary);
        assert!(
            recovered.recovery().counts_restored,
            "cut at byte {cut}: a torn tail after the snapshot must not \
             invalidate the counts sidecar"
        );
        drop(recovered);
        assert_eq!(
            std::fs::metadata(crash.join(JOURNAL_FILE)).unwrap().len(),
            boundary,
            "cut at byte {cut}: torn tail must be truncated"
        );
        std::fs::remove_dir_all(&crash).unwrap();
    }

    // A torn tail *and* a damaged counts file together: recovery falls
    // back to the recompute and still lands on the exact prefix state.
    let mid_batch = ends[0] + (ends[1] - ends[0]) / 2;
    let crash = crashed_copy_with_counts(&dir, "pcut_nocounts", mid_batch);
    let counts_path = crash.join(dduf::persist::COUNTS_FILE);
    let counts_bytes = std::fs::read(&counts_path).unwrap();
    std::fs::write(&counts_path, &counts_bytes[..counts_bytes.len() / 2]).unwrap();
    let recovered = DurableDb::open(&crash).unwrap();
    assert!(
        !recovered.recovery().counts_restored,
        "damaged counts must fall back to recompute"
    );
    assert_eq!(fingerprint(recovered.processor()), reference_fingerprint(2));
    drop(recovered);
    std::fs::remove_dir_all(&crash).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn midlog_byte_flip_is_a_named_corruption_error() {
    let dir = tmpdir("flip");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    for src in TXNS {
        let txn = db.transaction(src).unwrap();
        db.commit(&txn).unwrap();
    }
    drop(db);
    let journal_path = dir.join(JOURNAL_FILE);
    let clean = std::fs::read(&journal_path).unwrap();
    let scan = journal::scan(&journal_path).unwrap();

    // Flip one payload byte of record 1 (mid-log: records 2 and 3 follow).
    let target = scan.records[1].offset as usize + journal::RECORD_HEADER + 3;
    let mut bytes = clean.clone();
    bytes[target] ^= 0x20;
    std::fs::write(&journal_path, &bytes).unwrap();
    match DurableDb::open(&dir) {
        Err(PersistError::Corrupt { record, detail, .. }) => {
            assert_eq!(record, 1, "error must name the damaged record");
            assert!(detail.contains("checksum mismatch"), "{detail}");
        }
        other => panic!("expected corruption at record 1, got {other:?}"),
    }
    // verify() sees the same damage; its rendering names the record.
    let err = dduf::persist::verify(&dir).unwrap_err();
    assert!(err.render().contains("record 1"), "{}", err.render());

    // Flipping a *checksum* byte (record 2's stored CRC) is also corruption.
    let mut bytes = clean.clone();
    bytes[scan.records[2].offset as usize + 5] ^= 0xFF;
    std::fs::write(&journal_path, &bytes).unwrap();
    match DurableDb::open(&dir) {
        Err(PersistError::Corrupt { record, .. }) => assert_eq!(record, 2),
        other => panic!("expected corruption at record 2, got {other:?}"),
    }

    // Restore the clean bytes: everything opens again.
    std::fs::write(&journal_path, &clean).unwrap();
    let db = DurableDb::open(&dir).unwrap();
    assert_eq!(
        fingerprint(db.processor()),
        reference_fingerprint(TXNS.len())
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_crash_recovers_through_snapshot_plus_tail() {
    let dir = tmpdir("ckpt");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    for src in &TXNS[..2] {
        let txn = db.transaction(src).unwrap();
        db.commit(&txn).unwrap();
    }
    db.checkpoint().unwrap();
    for src in &TXNS[2..] {
        let txn = db.transaction(src).unwrap();
        db.commit(&txn).unwrap();
    }
    drop(db);

    let journal_path = dir.join(JOURNAL_FILE);
    let scan = journal::scan(&journal_path).unwrap();
    let last_start = scan.records.last().unwrap().offset;
    // Crash mid-final-record, after the checkpoint.
    let crash = crashed_copy(&dir, "ckpt_cut", last_start + 3);
    let recovered = DurableDb::open(&crash).unwrap();
    assert_eq!(fingerprint(recovered.processor()), reference_fingerprint(3));
    assert_eq!(recovered.recovery().replayed, 1, "snapshot covers 2 of 3");
    std::fs::remove_dir_all(&crash).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn oversized_append_fails_cleanly_with_no_bytes_written() {
    let dir = tmpdir("oversized");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    let txn = db.transaction(TXNS[0]).unwrap();
    db.commit(&txn).unwrap();
    drop(db);

    let journal_path = dir.join(JOURNAL_FILE);
    let before = std::fs::read(&journal_path).unwrap();
    let (mut j, scan) = journal::Journal::open(&journal_path).unwrap();
    assert_eq!(scan.records.len(), 1);

    let oversized = "x".repeat(journal::MAX_RECORD as usize + 1);
    match j.append(&oversized) {
        Err(PersistError::RecordTooLarge { bytes, max, .. }) => {
            assert_eq!(bytes, journal::MAX_RECORD as u64 + 1);
            assert_eq!(max, journal::MAX_RECORD);
        }
        other => panic!("expected RecordTooLarge, got {other:?}"),
    }
    drop(j);
    drop(oversized);

    // Not a single byte hit disk — the journal is byte-for-byte what it
    // was before the rejected append, and the database stays fully
    // usable: reopen, commit the next transaction, state is exact.
    assert_eq!(std::fs::read(&journal_path).unwrap(), before);
    let mut db = DurableDb::open(&dir).unwrap();
    assert_eq!(fingerprint(db.processor()), reference_fingerprint(1));
    let txn = db.transaction(TXNS[1]).unwrap();
    db.commit(&txn).unwrap();
    assert_eq!(fingerprint(db.processor()), reference_fingerprint(2));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn preexisting_oversized_record_is_reported_corrupt_not_allocated() {
    let dir = tmpdir("implausible");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    let txn = db.transaction(TXNS[0]).unwrap();
    db.commit(&txn).unwrap();
    drop(db);

    // Hand-frame the record a pre-cap writer could have produced: a
    // length prefix over MAX_RECORD. The scanner must reject it as
    // corruption (naming the record) *before* allocating a body buffer —
    // and must not mistake it for a recoverable torn tail.
    let journal_path = dir.join(JOURNAL_FILE);
    let mut bytes = std::fs::read(&journal_path).unwrap();
    bytes.extend_from_slice(&(journal::MAX_RECORD + 1).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    std::fs::write(&journal_path, &bytes).unwrap();

    match DurableDb::open(&dir) {
        Err(PersistError::Corrupt { record, detail, .. }) => {
            assert_eq!(record, 1, "error must name the oversized record");
            assert!(detail.contains("implausible record length"), "{detail}");
        }
        other => panic!("expected corruption at record 1, got {other:?}"),
    }
    let err = dduf::persist::verify(&dir).unwrap_err();
    assert!(err.render().contains("record 1"), "{}", err.render());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A clean checkpoint persists the maintenance state; reopening
/// restores the support counts instead of recomputing them, and the
/// restored engine keeps committing correctly.
#[test]
fn counts_restore_after_checkpoint_skips_the_recompute() {
    let dir = tmpdir("counts_ok");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    for src in &TXNS[..3] {
        let txn = db.transaction(src).unwrap();
        db.commit(&txn).unwrap();
    }
    db.checkpoint().unwrap();
    drop(db);
    assert!(dir.join(dduf::persist::COUNTS_FILE).exists());

    let (mut recovered, report) = dduf::obs::capture(|| DurableDb::open(&dir).unwrap());
    assert!(recovered.recovery().counts_restored, "counts must restore");
    assert_eq!(report.total("counts.persist", "loaded"), 1);
    assert_eq!(report.total("counts.persist", "recompute"), 0);
    assert!(recovered.processor().maintenance().is_some());
    assert_eq!(fingerprint(recovered.processor()), reference_fingerprint(3));
    // The restored engine is live: the next commit lands correctly.
    let txn = recovered.transaction(TXNS[3]).unwrap();
    recovered.commit(&txn).unwrap();
    assert_eq!(
        fingerprint(recovered.processor()),
        reference_fingerprint(TXNS.len())
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash injection inside the counts section: truncate the counts file
/// at every byte offset (and flip bytes mid-file) — recovery must fall
/// back to a full recompute, never load partial counts, and always land
/// on the exact reference state.
#[test]
fn damaged_counts_file_falls_back_to_recompute_never_partial() {
    let dir = tmpdir("counts_cut");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    for src in &TXNS[..3] {
        let txn = db.transaction(src).unwrap();
        db.commit(&txn).unwrap();
    }
    db.checkpoint().unwrap();
    drop(db);

    let counts_path = dir.join(dduf::persist::COUNTS_FILE);
    let clean = std::fs::read(&counts_path).unwrap();
    let expected = reference_fingerprint(3);

    // Every truncation point, including the empty file.
    for cut in 0..clean.len() {
        std::fs::write(&counts_path, &clean[..cut]).unwrap();
        let (recovered, report) = dduf::obs::capture(|| DurableDb::open(&dir).unwrap());
        assert!(
            !recovered.recovery().counts_restored,
            "cut at byte {cut}: a truncated counts file must not restore"
        );
        assert_eq!(report.total("counts.persist", "recompute"), 1, "cut {cut}");
        assert!(
            recovered.processor().maintenance().is_some(),
            "cut {cut}: recompute still enables maintenance"
        );
        assert_eq!(
            fingerprint(recovered.processor()),
            expected,
            "cut at byte {cut}"
        );
        drop(recovered);
    }

    // A flipped byte mid-file (checksum catches it) also falls back.
    let mut bytes = clean.clone();
    let mid = clean.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&counts_path, &bytes).unwrap();
    let recovered = DurableDb::open(&dir).unwrap();
    assert!(!recovered.recovery().counts_restored, "flipped byte {mid}");
    assert_eq!(fingerprint(recovered.processor()), expected);
    drop(recovered);

    // Restoring the clean bytes restores the fast path.
    std::fs::write(&counts_path, &clean).unwrap();
    let recovered = DurableDb::open(&dir).unwrap();
    assert!(recovered.recovery().counts_restored);
    assert_eq!(fingerprint(recovered.processor()), expected);
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A counts file left behind by an *older* checkpoint (journal position
/// mismatch with the snapshot — the picture a crash between the two
/// renames leaves) is rejected, not half-applied.
#[test]
fn stale_counts_file_is_rejected_on_journal_position_mismatch() {
    let dir = tmpdir("counts_stale");
    let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
    let txn = db.transaction(TXNS[0]).unwrap();
    db.commit(&txn).unwrap();
    db.checkpoint().unwrap();
    drop(db);
    let stale = std::fs::read(dir.join(dduf::persist::COUNTS_FILE)).unwrap();

    // Advance the database and checkpoint again, then put the old
    // counts file back: snapshot and counts now disagree on coverage.
    let mut db = DurableDb::open(&dir).unwrap();
    for src in &TXNS[1..3] {
        let txn = db.transaction(src).unwrap();
        db.commit(&txn).unwrap();
    }
    db.checkpoint().unwrap();
    drop(db);
    std::fs::write(dir.join(dduf::persist::COUNTS_FILE), &stale).unwrap();

    let recovered = DurableDb::open(&dir).unwrap();
    assert!(
        !recovered.recovery().counts_restored,
        "stale counts must not restore"
    );
    assert_eq!(fingerprint(recovered.processor()), reference_fingerprint(3));
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_open_of_a_live_database_is_refused() {
    let dir = tmpdir("locked");
    let db = DurableDb::init(&dir, SCHEMA).unwrap();

    // A second opener must get the clear lock error, not a silent race
    // on the journal.
    match DurableDb::open(&dir) {
        Err(e @ PersistError::Locked { .. }) => {
            assert!(
                e.render().contains("locked by another process"),
                "{}",
                e.render()
            );
        }
        other => panic!("expected Locked, got {other:?}"),
    }

    // Read-only inspection (verify/log) deliberately does not lock.
    assert!(dduf::persist::verify(&dir).is_ok());
    assert!(dduf::persist::read_log(&dir).is_ok());

    // The lock dies with its owner: dropping the first handle frees it.
    drop(db);
    assert!(DurableDb::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn session_commits_are_journaled_with_write_ahead_ordering() {
    use dduf::cli::Session;
    let dir = tmpdir("session");
    DurableDb::init(&dir, SCHEMA).unwrap();
    let mut s = Session::durable(DurableDb::open(&dir).unwrap());
    let out = s.run(":force +la(ana).").unwrap();
    assert!(out.contains("applied"), "{out}");
    let out = s.run(":update -unemp(dolors).").unwrap();
    assert!(out.contains("[1]"), "{out}");
    let out = s.run(":do 1").unwrap();
    assert!(out.contains("committed"), "{out}");
    let out = s.run(":checkpoint").unwrap();
    assert!(out.contains("checkpoint written"), "{out}");
    drop(s);

    // The commit survives a reopen; the snapshot covers it.
    let db = DurableDb::open(&dir).unwrap();
    assert_eq!(db.recovery().replayed, 0, "checkpoint covers the commits");
    let unemp = db
        .processor()
        .interpretation()
        .relation(Pred::new("unemp", 1));
    assert!(
        !unemp.contains(&Tuple::new(vec![Const::sym("dolors")])),
        "the :do 1 commit must survive the reopen"
    );
    assert!(
        unemp.contains(&Tuple::new(vec![Const::sym("ana")])),
        "the :force commit must survive the reopen"
    );

    // An in-memory session refuses :checkpoint.
    let mut plain = Session::from_source(SCHEMA).unwrap();
    assert!(plain.run(":checkpoint").is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}
