//! End-to-end tests of the observability surface of the `dduf` binary:
//! `--trace` / `--trace=json` run reports on stderr, the `:stats` shell
//! command, `dduf db stats`, and — crucially — that tracing changes
//! nothing else: the default output stays byte-identical and the JSON
//! report's semantic counters are identical at any thread count.

use std::io::Write as _;
use std::process::{Command, Stdio};

const EMPLOYMENT: &str = "la(dolors). u_benefit(dolors).
unemp(X) :- la(X), not works(X).
:- unemp(X), not u_benefit(X).
";

const SCRIPT: &str = ":check -u_benefit(dolors).
:update -unemp(dolors).
:do 1
:show
:quit
";

/// Writes the employment database to a temp file and returns its path.
fn db_file(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("dduf_trace_{}_{name}.dl", std::process::id()));
    std::fs::write(&path, EMPLOYMENT).unwrap();
    path
}

/// Runs the binary with `args` and environment overrides, piping `script`
/// to stdin when given.
fn dduf(args: &[&str], envs: &[(&str, &str)], script: Option<&str>) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dduf"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    match script {
        None => {
            cmd.stdin(Stdio::null());
            cmd.output().unwrap()
        }
        Some(s) => {
            cmd.stdin(Stdio::piped());
            let mut child = cmd.spawn().unwrap();
            child
                .stdin
                .as_mut()
                .unwrap()
                .write_all(s.as_bytes())
                .unwrap();
            child.wait_with_output().unwrap()
        }
    }
}

/// With no `--trace`, stdout and stderr are byte-identical to what the
/// binary printed before tracing existed: the collector must be
/// invisible by default.
#[test]
fn default_output_is_untouched_by_tracing() {
    let path = db_file("default");
    let plain = dduf(&[path.to_str().unwrap()], &[], Some(SCRIPT));
    let traced = dduf(&["--trace", path.to_str().unwrap()], &[], Some(SCRIPT));
    assert!(plain.status.success());
    assert!(traced.status.success());
    assert!(
        plain.stderr.is_empty(),
        "default stderr not empty: {}",
        String::from_utf8_lossy(&plain.stderr)
    );
    assert_eq!(
        plain.stdout, traced.stdout,
        "--trace changed stdout (report must go to stderr only)"
    );
    let report = String::from_utf8_lossy(&traced.stderr);
    assert!(report.contains("trace report"), "{report}");
    assert!(report.contains("eval.materialize"), "{report}");
    assert!(report.contains("upward.apply"), "{report}");
    assert!(report.contains("downward.translate"), "{report}");
    let _ = std::fs::remove_file(&path);
}

/// `--trace=json` emits one JSON document on stderr with the documented
/// shape — version tag, semantic_only marker, phases with labelled spans
/// and counter objects — and no wall-clock fields.
#[test]
fn trace_json_has_the_documented_shape() {
    let path = db_file("json");
    let out = dduf(&["--trace=json", path.to_str().unwrap()], &[], Some(SCRIPT));
    assert!(out.status.success());
    let json = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(
        json.starts_with("{\"dduf_trace\":1,\"semantic_only\":true,\"phases\":["),
        "{json}"
    );
    assert!(json.ends_with("}\n"), "{json}");
    assert!(json.contains("\"phase\":\"eval.materialize\""), "{json}");
    assert!(json.contains("\"label\":\"\""), "{json}");
    assert!(json.contains("\"count\":"), "{json}");
    assert!(json.contains("\"counters\":{"), "{json}");
    assert!(json.contains("\"components\":"), "{json}");
    assert!(json.contains("\"phase\":\"downward.translate\""), "{json}");
    assert!(json.contains("\"alternatives\":"), "{json}");
    assert!(
        !json.contains("time_us"),
        "semantic-only JSON must exclude wall-clock times: {json}"
    );
    // Balanced nesting: same number of opening and closing braces/brackets.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "{json}");
    let _ = std::fs::remove_file(&path);
}

/// The determinism contract, end to end: the full JSON report (which
/// holds only semantic counters) is byte-identical at 1 and 8 worker
/// threads, via the `DDUF_THREADS` environment variable CI uses.
#[test]
fn trace_json_identical_across_thread_counts() {
    let path = db_file("threads");
    let one = dduf(
        &["--trace=json", path.to_str().unwrap()],
        &[("DDUF_THREADS", "1")],
        Some(SCRIPT),
    );
    let eight = dduf(
        &["--trace=json", path.to_str().unwrap()],
        &[("DDUF_THREADS", "8")],
        Some(SCRIPT),
    );
    assert!(one.status.success() && eight.status.success());
    assert_eq!(one.stdout, eight.stdout);
    assert_eq!(
        String::from_utf8_lossy(&one.stderr),
        String::from_utf8_lossy(&eight.stderr),
        "semantic trace diverges across thread counts"
    );
    let _ = std::fs::remove_file(&path);
}

/// A bad `--trace` value is a usage error: exit 2 and the usage text.
#[test]
fn bad_trace_value_is_a_usage_error() {
    let path = db_file("badvalue");
    let out = dduf(&["--trace=bogus", path.to_str().unwrap()], &[], None);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace expects"), "{err}");
    assert!(err.contains("usage:"), "{err}");
    let _ = std::fs::remove_file(&path);
}

/// `:stats` works in a piped session — even without `--trace` — because
/// the collector is always installed; it renders whatever has been
/// recorded so far.
#[test]
fn stats_command_reports_in_session() {
    let path = db_file("stats");
    let out = dduf(
        &[path.to_str().unwrap()],
        &[],
        Some(":apply +works(dolors).\n:stats\n:quit\n"),
    );
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace report"), "{stdout}");
    assert!(stdout.contains("eval.materialize"), "{stdout}");
    assert!(stdout.contains("upward.apply"), "{stdout}");
    // No --trace flag: nothing on stderr.
    assert!(
        out.stderr.is_empty(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&path);
}

/// `dduf db stats` prints a storage summary plus the recovery trace and
/// uses the documented exit codes (0 ok, 1 damaged/missing, 2 usage).
#[test]
fn db_stats_summary_and_exit_codes() {
    let schema = db_file("dbstats_schema");
    let dir = std::env::temp_dir().join(format!("dduf_trace_dbstats_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let init = dduf(
        &[
            "db",
            "init",
            schema.to_str().unwrap(),
            dir.to_str().unwrap(),
        ],
        &[],
        None,
    );
    assert!(init.status.success());
    let open = dduf(
        &["db", "open", dir.to_str().unwrap()],
        &[],
        Some(":apply +works(dolors).\n:quit\n"),
    );
    assert!(open.status.success());

    let stats = dduf(&["db", "stats", dir.to_str().unwrap()], &[], None);
    assert_eq!(stats.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(stdout.contains("journal end at byte"), "{stdout}");
    assert!(stdout.contains("1 record(s) replayed"), "{stdout}");
    assert!(stdout.contains("recovery.open"), "{stdout}");
    assert!(stdout.contains("journal.scan"), "{stdout}");

    let missing = dduf(&["db", "stats", "/nonexistent_dduf_db"], &[], None);
    assert_eq!(missing.status.code(), Some(1));
    let usage = dduf(&["db", "stats"], &[], None);
    assert_eq!(usage.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&schema);
}
