//! Randomized fault-injection harness for the pipelined server
//! (DESIGN.md §16). Two families of evidence that pipelining staging
//! with the in-flight fsync changes *when* durability happens, never
//! what is committed:
//!
//! * **Seeded randomized workload** — N concurrent clients drive a
//!   deterministic (per-client xorshift-seeded) mix of `:apply`
//!   inserts and deletes, `:query`, `:check`, and `:checkpoint`
//!   against an in-process server, in both writer modes. The final
//!   durable state must be the serial replay of the journal, replaying
//!   the journal twice must produce identical semantic trace
//!   fingerprints, and each client's last acknowledged write to a key
//!   decides that key's final state.
//! * **SIGKILL crash injection** — clients stream pipelined commits at
//!   a real `dduf serve` process (fsync widened by the journal's
//!   `DDUF_SYNC_DELAY_US` hook so the kill lands inside the pipelined
//!   window) and the process is killed at a seed-chosen moment, in
//!   both writer modes. Recovery must contain every acknowledged
//!   commit, must not contain anything never sent, and the crashed
//!   journal must still replay to the recovered state.

use dduf::core::rng::Rng;
use dduf::prelude::*;
use dduf::server::proto::read_response;
use dduf::server::{start, ServerConfig};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const SCHEMA: &str = "acct(seed, s0). mirror(X) :- acct(X, Y).";

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dduf_fault_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Replays the journal serially through a fresh in-memory processor
/// under trace capture; returns the rendered final database and the
/// deterministic trace fingerprint.
fn replay_journal(dir: &Path) -> (String, String) {
    let (_, scan) = dduf::persist::read_log(dir).unwrap();
    let (rendered, report) = dduf::obs::capture(|| {
        let mut replay = UpdateProcessor::new(parse_database(SCHEMA).unwrap()).unwrap();
        for r in &scan.records {
            let txn = replay.transaction(&r.payload).unwrap();
            replay.commit(&txn).unwrap();
        }
        dduf::datalog::pretty::database(replay.database())
    });
    (rendered, report.semantic_fingerprint())
}

/// Serial equivalence + trace determinism: the recovered state must be
/// the serial replay of the journal, and replaying twice must agree on
/// state and on the semantic trace fingerprint. Returns the rendered
/// recovered state.
fn audit(dir: &Path) -> String {
    let (once, fp_once) = replay_journal(dir);
    let (twice, fp_twice) = replay_journal(dir);
    assert_eq!(once, twice, "journal replay is not deterministic");
    assert_eq!(
        fp_once, fp_twice,
        "journal replay trace fingerprint is not deterministic"
    );
    let recovered = dduf::persist::DurableDb::open(dir).unwrap();
    let state = dduf::datalog::pretty::database(recovered.processor().database());
    assert_eq!(
        once, state,
        "recovered state is not a serial replay of the journal"
    );
    state
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> (bool, Vec<String>) {
        writeln!(self.stream, "{line}").unwrap();
        read_response(&mut self.reader).unwrap()
    }
}

/// One randomized client: a deterministic stream of inserts, deletes,
/// queries, checks, and checkpoints over its own key space. Returns
/// each key's last acknowledged state (true = inserted, false =
/// deleted).
fn random_client(addr: SocketAddr, id: usize, seed: u64, ops: usize) -> HashMap<String, bool> {
    let mut rng = Rng::new(seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut client = Client::connect(addr);
    // Keys this client believes are live (acknowledged inserts minus
    // acknowledged deletes). Keys are namespaced by client id, so no
    // other session ever touches them.
    let mut last: HashMap<String, bool> = HashMap::new();
    for _ in 0..ops {
        let roll = rng.usize(100);
        if roll < 55 {
            let fact = format!("acct(c{id}, k{})", rng.usize(24));
            let (ok, lines) = client.send(&format!(":apply +{fact}."));
            assert!(ok, "client {id} insert: {lines:?}");
            last.insert(fact, true);
        } else if roll < 70 {
            let live: Vec<&String> = last.iter().filter(|(_, v)| **v).map(|(k, _)| k).collect();
            if !live.is_empty() {
                let fact = (*rng.choose(&live)).clone();
                let (ok, lines) = client.send(&format!(":apply -{fact}."));
                assert!(ok, "client {id} delete: {lines:?}");
                last.insert(fact, false);
            }
        } else if roll < 85 {
            let (ok, lines) = client.send(&format!(":query mirror(c{id})"));
            assert!(ok, "client {id} query: {lines:?}");
            // Read-your-writes: if any key is live, the derived view
            // must contain this client's mirror row.
            if last.values().any(|v| *v) {
                assert!(
                    lines.iter().any(|l| l == &format!("mirror(c{id})")),
                    "client {id}: own writes invisible: {lines:?}"
                );
            }
        } else if roll < 95 {
            let (ok, lines) = client.send(":check +acct(probe, p).");
            assert!(ok, "client {id} check: {lines:?}");
        } else {
            let (ok, lines) = client.send(":checkpoint");
            assert!(ok, "client {id} checkpoint: {lines:?}");
        }
    }
    let (ok, _) = client.send(":quit");
    assert!(ok);
    last
}

/// Four randomized clients against an in-process server, in both
/// writer modes: the journal must replay deterministically to the
/// recovered state, and every key must match its owner's last
/// acknowledged write.
#[test]
fn randomized_workload_is_serially_equivalent_in_both_modes() {
    for (pipeline, seed) in [(true, 0xfau64), (false, 0x17u64)] {
        let dir = tmpdir(&format!("rand_{pipeline}"));
        let db = dduf::persist::DurableDb::init(&dir, SCHEMA).unwrap();
        let handle = start(
            db,
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                sessions: 4,
                max_batch: 4,
                pipeline,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();

        let workers: Vec<_> = (0..4)
            .map(|id| std::thread::spawn(move || random_client(addr, id, seed, 40)))
            .collect();
        let outcomes: Vec<HashMap<String, bool>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();
        handle.shutdown();

        let state = audit(&dir);
        for last in &outcomes {
            for (fact, alive) in last {
                let present = state.contains(&format!("{fact}."));
                assert_eq!(
                    present, *alive,
                    "{fact}: last acked write said alive={alive}, state disagrees (pipeline={pipeline})"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Spawns `dduf serve` on an ephemeral port with a widened fsync (so
/// kills land inside the pipelined window) and parses the bound
/// address.
fn spawn_server(
    dir: &Path,
    serial: bool,
) -> (Child, SocketAddr, BufReader<std::process::ChildStdout>) {
    let mut args = vec![
        "serve".to_string(),
        dir.to_str().unwrap().to_string(),
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--sessions".into(),
        "4".into(),
        "--max-batch".into(),
        "4".into(),
    ];
    if serial {
        args.push("--serial".into());
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .args(&args)
        .env("DDUF_SYNC_DELAY_US", "1500")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            reader.read_line(&mut line).unwrap(),
            0,
            "server exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.parse().unwrap();
        }
    };
    (child, addr, reader)
}

/// What one crash-facing client saw: every fact it put on the wire and
/// every fact the server acknowledged durable.
struct ClientLog {
    sent: Vec<String>,
    acked: Vec<String>,
}

/// Streams commits with two requests in flight (exercising the
/// session's pipelined submission path) until the connection dies.
/// Every response read before the crash is an `ok` the server must
/// honor after recovery.
fn crash_client(addr: SocketAddr, id: usize, seed: u64) -> ClientLog {
    let mut rng = Rng::new(seed ^ (id as u64).wrapping_mul(0x517c_c1b7_2722_0a95));
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            return ClientLog {
                sent: Vec::new(),
                acked: Vec::new(),
            }
        }
    };
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut log = ClientLog {
        sent: Vec::new(),
        acked: Vec::new(),
    };
    // FIFO of in-flight requests; `Some(fact)` for commits, `None` for
    // the occasional interleaved `:checkpoint`.
    let mut in_flight: VecDeque<Option<String>> = VecDeque::new();
    let settle = |reader: &mut BufReader<TcpStream>,
                  in_flight: &mut VecDeque<Option<String>>,
                  acked: &mut Vec<String>| {
        let sent = in_flight.pop_front().expect("response without request");
        match read_response(reader) {
            Ok((ok, lines)) => {
                if let Some(fact) = sent {
                    assert!(ok, "commit rejected without fault: {lines:?}");
                    acked.push(fact);
                }
                true
            }
            Err(_) => false, // the server died mid-response
        }
    };
    for i in 0..100_000 {
        let line = if rng.chance(0.05) {
            in_flight.push_back(None);
            ":checkpoint".to_string()
        } else {
            let fact = format!("acct(c{id}, i{i})");
            log.sent.push(fact.clone());
            in_flight.push_back(Some(fact));
            format!(":apply +{}.", log.sent.last().unwrap())
        };
        if writeln!(writer, "{line}").is_err() {
            in_flight.pop_back(); // never reached the wire
            break;
        }
        if in_flight.len() >= 2 && !settle(&mut reader, &mut in_flight, &mut log.acked) {
            return log;
        }
    }
    while !in_flight.is_empty() {
        if !settle(&mut reader, &mut in_flight, &mut log.acked) {
            break;
        }
    }
    log
}

/// SIGKILL at a seed-chosen moment of a streaming pipelined workload,
/// in both writer modes: recovery keeps every acknowledged commit,
/// invents nothing that was never sent, and the (possibly torn)
/// journal still replays to the recovered state.
#[test]
fn sigkill_under_load_loses_no_acked_commit_and_invents_none() {
    let mut rng = Rng::new(0xdead_beef_cafe);
    for round in 0..2u64 {
        for serial in [false, true] {
            let dir = tmpdir(&format!("kill_{round}_{serial}"));
            drop(dduf::persist::DurableDb::init(&dir, SCHEMA).unwrap());
            let (mut child, addr, _stdout) = spawn_server(&dir, serial);

            let seed = 0x5eed ^ round;
            let workers: Vec<_> = (0..3)
                .map(|id| std::thread::spawn(move || crash_client(addr, id, seed)))
                .collect();
            // Let the pipeline fill, then kill at an arbitrary point of
            // the window (fsyncs take ≥1.5ms here, so this lands with
            // a staged batch behind an in-flight one).
            std::thread::sleep(std::time::Duration::from_millis(40 + rng.usize(120) as u64));
            child.kill().unwrap();
            child.wait().unwrap();
            let logs: Vec<ClientLog> = workers.into_iter().map(|w| w.join().unwrap()).collect();

            let state = audit(&dir);
            let sent: HashSet<&String> = logs.iter().flat_map(|l| l.sent.iter()).collect();
            let mut acked_total = 0usize;
            for log in &logs {
                acked_total += log.acked.len();
                for fact in &log.acked {
                    assert!(
                        state.contains(&format!("{fact}.")),
                        "acked commit {fact} lost by SIGKILL (serial={serial}, round={round})"
                    );
                }
            }
            // Nothing in the recovered state beyond the schema seed and
            // facts some client actually sent: an unacked commit may
            // land (it was in flight), but nothing can be invented.
            for line in state.lines() {
                let fact = line.trim().trim_end_matches('.');
                if let Some(body) = fact.strip_prefix("acct(") {
                    if body.starts_with("seed") {
                        continue;
                    }
                    assert!(
                        sent.contains(&fact.to_string()),
                        "recovered state invented {fact} (serial={serial}, round={round})"
                    );
                }
            }
            assert!(
                acked_total > 0,
                "kill landed before any commit was acknowledged; widen the window \
                 (serial={serial}, round={round})"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
