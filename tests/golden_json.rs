//! Golden tests for the machine-readable output of `dduf lint` and
//! `dduf analyze`. The JSON these verbs print is a public interface —
//! editor integrations and CI scripts parse it — so its exact shape is
//! pinned here character for character. If one of these tests fails
//! because of an intentional format change, update the expected string
//! AND mention the change in README.md; downstream parsers need to know.

use dduf::analyze::{analyze_file, AnalyzeOptions};
use dduf::lint::{lint_source, Format, LintOptions};

const CLEAN: &str = "\
% golden fixture
la(dolors). la(joan). works(joan).
unemp(X) :- la(X), not works(X).
";

const WARNINGS: &str = "\
q(a). r(b).
v(X) :- q(X), r(W).
";

fn lint_opts() -> LintOptions {
    LintOptions {
        deny_warnings: false,
        format: Format::Json,
        path: "golden.dl".into(),
    }
}

fn analyze_opts() -> AnalyzeOptions {
    AnalyzeOptions {
        format: Format::Json,
        path: "golden.dl".into(),
    }
}

#[test]
fn lint_json_clean_program() {
    let r = lint_source("golden.dl", CLEAN, &lint_opts());
    assert_eq!(r.exit_code, 0);
    assert_eq!(
        r.output,
        "{\"file\":\"golden.dl\",\"diagnostics\":[],\"errors\":0,\"warnings\":0}\n"
    );
}

#[test]
fn lint_json_warnings() {
    let r = lint_source("golden.dl", WARNINGS, &lint_opts());
    assert_eq!(r.exit_code, 0);
    assert_eq!(
        r.output,
        concat!(
            "{\"file\":\"golden.dl\",\"diagnostics\":[",
            "{\"code\":\"W009\",\"severity\":\"warning\",",
            "\"message\":\"cartesian product: the positive body literals of this `v` rule form 2 disconnected variable groups\",",
            "\"spans\":[",
            "{\"line\":2,\"col\":1,\"width\":1,\"primary\":true,\"label\":\"rule whose body is a cross product\"},",
            "{\"line\":2,\"col\":9,\"width\":1,\"primary\":false,\"label\":\"independent group starts here\"},",
            "{\"line\":2,\"col\":15,\"width\":1,\"primary\":false,\"label\":\"independent group starts here\"}",
            "],\"help\":\"join the groups through a shared variable, or split the rule\"},",
            "{\"code\":\"W001\",\"severity\":\"warning\",",
            "\"message\":\"singleton variable `W` in rule for `v/1`\",",
            "\"spans\":[",
            "{\"line\":2,\"col\":15,\"width\":1,\"primary\":true,\"label\":\"`W` occurs only here\"}",
            "],\"help\":\"`W` joins with nothing; use `_` if a don't-care was intended\"}",
            "],\"errors\":0,\"warnings\":2}\n"
        )
    );
}

#[test]
fn analyze_json_clean_program() {
    let r = analyze_file("golden.dl", CLEAN, &analyze_opts());
    assert_eq!(r.exit_code, 0);
    assert_eq!(
        r.output,
        concat!(
            "{\"file\":\"golden.dl\",\"report\":{\"predicates\":[",
            "{\"pred\":\"la/1\",\"role\":\"base\",\"rules\":0,\"facts\":2,\"bound\":2,",
            "\"class\":\"tiny\",\"sigs\":[[0]],\"patterns\":[\"b\",\"f\"]},",
            "{\"pred\":\"unemp/1\",\"role\":\"view\",\"rules\":1,\"facts\":0,\"bound\":2,",
            "\"class\":\"tiny\",\"sigs\":[],\"patterns\":[\"b\"],",
            "\"translation\":\"ambiguous\",\"ambiguity\":[\"negation\"],",
            "\"maintenance\":\"deletion_sensitive\",\"monitoring\":\"direct\"},",
            "{\"pred\":\"works/1\",\"role\":\"base\",\"rules\":0,\"facts\":1,\"bound\":1,",
            "\"class\":\"tiny\",\"sigs\":[],\"patterns\":[\"b\",\"f\"]}",
            "],\"plans_considered\":4,\"recursive\":false},",
            "\"diagnostics\":[",
            "{\"code\":\"I002\",\"severity\":\"info\",",
            "\"message\":\"view `unemp`: update translation is ambiguous (negation) — requests expand to alternative base transactions (§5.2)\",",
            "\"spans\":[{\"line\":3,\"col\":1,\"width\":5,\"primary\":true,\"label\":\"defined here\"}]},",
            "{\"code\":\"I003\",\"severity\":\"info\",",
            "\"message\":\"view `unemp`: maintenance is deletion-sensitive — its definition passes through negation, so insertions can induce deletions (§3.2)\",",
            "\"spans\":[{\"line\":3,\"col\":1,\"width\":5,\"primary\":true,\"label\":\"defined here\"}]}",
            "],\"errors\":0,\"warnings\":0,\"infos\":2}\n"
        )
    );
}

#[test]
fn analyze_json_parse_failure_keeps_shape() {
    let r = analyze_file("golden.dl", "v(X :-\n", &analyze_opts());
    assert_eq!(r.exit_code, 1);
    // Unparsable input: report is null, the E000 diagnostic carries the
    // parse error, counts stay present.
    assert!(r
        .output
        .starts_with("{\"file\":\"golden.dl\",\"report\":null,"));
    assert!(r.output.contains("\"code\":\"E000\""), "{}", r.output);
    assert!(r.output.trim_end().ends_with("\"warnings\":0,\"infos\":0}"));
}
