//! Integration tests for rule updates (§5.3 closing paragraph): adding and
//! removing deductive rules and integrity constraints through the uniform
//! update processor, with induced derived events reported exactly like
//! base-fact transactions.

use dduf::core::evolution::EventRuleChange;
use dduf::core::problems::repair::RepairOutcome;
use dduf::core::testkit;
use dduf::prelude::*;

fn rule(src: &str) -> Rule {
    let out = dduf::datalog::parser::parse_program(src).unwrap();
    out.program.rules()[0].clone()
}

#[test]
fn adding_a_rule_induces_derived_insertions() {
    // unemp(X) :- la(X), not works(X) exists; dolors is unemployed.
    let mut proc = UpdateProcessor::new(testkit::employment_db()).unwrap();
    // New rule: anyone with a benefit also counts as supported.
    let res = proc
        .add_rule(rule("supported(X) :- u_benefit(X)."))
        .unwrap();
    assert!(res
        .rule_changes
        .contains(&EventRuleChange::Added(Pred::new("supported", 1))));
    assert!(res.induced.contains(&GroundEvent::ins(
        Pred::new("supported", 1),
        Tuple::new(vec![Const::sym("dolors")])
    )));
    // The processor's state is fresh: queries see the new view.
    assert!(proc.state().holds(
        Pred::new("supported", 1),
        &Tuple::new(vec![Const::sym("dolors")])
    ));
}

#[test]
fn removing_a_rule_induces_derived_deletions() {
    let mut proc = UpdateProcessor::new(testkit::employment_db()).unwrap();
    let doomed = rule("unemp(X) :- la(X), not works(X).");
    let res = proc.remove_rule(&doomed).unwrap();
    // unemp(dolors) disappears, and with it the (satisfied) ic1 stays off.
    assert!(res.induced.contains(&GroundEvent::del(
        Pred::new("unemp", 1),
        Tuple::new(vec![Const::sym("dolors")])
    )));
    assert!(res.rule_changes.iter().any(
        |c| matches!(c, EventRuleChange::Rebuilt(p) | EventRuleChange::Removed(p)
            if *p == Pred::new("unemp", 1))
    ));
}

#[test]
fn adding_a_constraint_can_make_db_inconsistent() {
    // Start consistent; add "no one both works and has a benefit" to a
    // database where that holds — then one where it does not.
    let db = parse_database(
        "works(pere). u_benefit(pere).
         unemp(X) :- la(X), not works(X).",
    )
    .unwrap();
    let mut proc = UpdateProcessor::new(db).unwrap();
    let (res, icp) = proc
        .add_constraint(vec![
            Literal::pos(Atom::new("works", vec![Term::var("X")])),
            Literal::pos(Atom::new("u_benefit", vec![Term::var("X")])),
        ])
        .unwrap();
    // The constraint fires immediately: ins ic events induced.
    assert!(res
        .induced
        .iter()
        .any(|e| e.pred == icp && e.kind == EventKind::Ins));
    // And the repair machinery can now fix it.
    match proc.repairs().unwrap() {
        RepairOutcome::Repairs(r) => assert!(!r.alternatives.is_empty()),
        other => panic!("expected repairs, got {other:?}"),
    }
}

#[test]
fn removing_a_constraint_restores_consistency() {
    let db = parse_database(
        "la(dolors).
         unemp(X) :- la(X), not works(X).
         :- unemp(X), not u_benefit(X).",
    )
    .unwrap();
    let mut proc = UpdateProcessor::new(db).unwrap();
    assert!(matches!(proc.repairs().unwrap(), RepairOutcome::Repairs(_)));
    let res = proc.remove_constraint(Pred::new("ic1", 0)).unwrap();
    assert!(res
        .induced
        .iter()
        .any(|e| e.kind == EventKind::Del && e.pred == Pred::new("ic1", 0)));
    assert!(matches!(
        proc.repairs().unwrap(),
        RepairOutcome::AlreadyConsistent | RepairOutcome::NoConstraints
    ));
}

#[test]
fn rule_update_then_transactions_keep_working() {
    let mut proc = UpdateProcessor::new(testkit::employment_db()).unwrap();
    proc.add_rule(rule("covered(X) :- works(X). ")).unwrap();
    proc.add_rule(rule("covered(X) :- u_benefit(X).")).unwrap();
    let txn = proc.transaction("+works(maria).").unwrap();
    let up = proc.upward(&txn).unwrap();
    assert!(up.induced_contains("covered", "maria"));
    proc.commit(&txn).unwrap();
    let fresh = materialize(proc.database()).unwrap();
    assert_eq!(proc.interpretation(), &fresh);
}

trait UpExt {
    fn induced_contains(&self, pred: &str, c: &str) -> bool;
}
impl UpExt for UpwardResult {
    fn induced_contains(&self, pred: &str, c: &str) -> bool {
        self.derived.contains(&GroundEvent::ins(
            Pred::new(pred, 1),
            Tuple::new(vec![Const::sym(c)]),
        ))
    }
}

#[test]
fn incompatible_rule_update_rejected() {
    // Adding a rule whose head predicate has stored facts must fail.
    let mut proc = UpdateProcessor::new(parse_database("s(a). q(b).").unwrap()).unwrap();
    let err = proc.add_rule(rule("s(X) :- q(X).")).unwrap_err();
    assert!(err.to_string().contains("derived"), "{err}");
    // The processor is unchanged after the failed update.
    assert!(proc
        .state()
        .holds(Pred::new("s", 1), &Tuple::new(vec![Const::sym("a")])));
}
