//! Parser robustness: arbitrary input never panics (errors are typed and
//! positioned), and pretty-printing round-trips through the parser.
//!
//! Written as deterministic fuzz loops over the in-tree PRNG
//! (`dduf::core::rng`) rather than proptest, so the suite builds with no
//! external dependencies. Seeds are fixed: every CI run explores the same
//! inputs, and a failing case can be re-run by seed.

use dduf::core::rng::Rng;
use dduf::datalog::parser::{parse_database, parse_events, parse_program};
use dduf::datalog::pretty;

/// No input string can panic the parser.
#[test]
fn arbitrary_strings_never_panic() {
    let mut rng = Rng::new(0xA11CE);
    for _ in 0..256 {
        let len = rng.usize(64);
        let src: String = (0..len)
            .map(|_| {
                // Mix printable ASCII with some multibyte and control chars.
                match rng.usize(10) {
                    0..=6 => (32 + rng.usize(95) as u8) as char,
                    7 => '\n',
                    8 => char::from_u32(0x3B1 + rng.usize(24) as u32).unwrap(), // Greek
                    _ => char::from_u32(rng.usize(0xD7FF) as u32).unwrap_or('?'),
                }
            })
            .collect();
        let _ = parse_program(&src);
        let _ = parse_events(&src);
    }
}

/// Inputs built from the language's own token alphabet never panic
/// (denser coverage of near-valid programs than fully random bytes).
#[test]
fn token_soup_never_panics() {
    const ALPHABET: [&str; 17] = [
        "p",
        "q(a)",
        "X",
        ":-",
        ",",
        ".",
        "not",
        "+",
        "-",
        "#view",
        "#domain",
        "{",
        "}",
        "/",
        "1",
        "'qu oted'",
        "%comment\n",
    ];
    let mut rng = Rng::new(0x50FA);
    for _ in 0..256 {
        let n = rng.usize(24);
        let src = (0..n)
            .map(|_| *rng.choose(&ALPHABET))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse_program(&src);
        let _ = parse_events(&src);
    }
}

/// Pretty-printed databases re-parse to the same program and facts —
/// checked exhaustively over the small configuration grid the proptest
/// version sampled from.
#[test]
fn pretty_parse_fixpoint() {
    for n_facts in 0usize..6 {
        for with_denial in [false, true] {
            for with_cond in [false, true] {
                let mut src = String::new();
                if with_cond {
                    src.push_str("#cond c/1.\nc(X) :- b(X), not r(X).\n");
                }
                src.push_str("v(X) :- b(X), not r(X).\n");
                if with_denial {
                    src.push_str(":- v(X), not w(X).\nw(X) :- b(X).\n");
                }
                for i in 0..n_facts {
                    src.push_str(&format!("b(k{i}).\n"));
                    if i % 2 == 0 {
                        src.push_str(&format!("r(k{i}).\n"));
                    }
                }
                let db1 = parse_database(&src).unwrap();
                let printed1 = format!("{}{}", pretty::program(db1.program()), pretty::facts(&db1));
                let db2 = parse_database(&printed1).unwrap();
                let printed2 = format!("{}{}", pretty::program(db2.program()), pretty::facts(&db2));
                assert_eq!(printed1, printed2);
                assert_eq!(db1.fact_count(), db2.fact_count());
                assert_eq!(db1.program().rules().len(), db2.program().rules().len());
            }
        }
    }
}

/// Named regression (formerly a proptest-regressions seed): a quoted
/// symbol that is a single uppercase letter must round-trip through the
/// pretty-printer *as a symbol* — unquoted it would re-parse as a
/// variable, silently changing the fact's meaning.
#[test]
fn regression_quoted_uppercase_symbol_round_trips() {
    let db1 = parse_database("p('A').").unwrap();
    let printed = pretty::facts(&db1);
    let db2 = parse_database(&printed).unwrap();
    assert_eq!(db1.fact_count(), 1);
    assert_eq!(db1.fact_count(), db2.fact_count(), "printed {printed:?}");
    // The re-parsed fact is still ground (a variable would not be).
    assert_eq!(pretty::facts(&db2), printed);
}

/// Quoted symbols with unusual characters survive the round trip.
#[test]
fn quoted_symbols_round_trip() {
    const CHARS: &[u8] = b"abcXYZ019 _.,;:+*-";
    let mut rng = Rng::new(0x9047ED);
    for _ in 0..128 {
        let len = 1 + rng.usize(12);
        let name: String = (0..len)
            .map(|_| CHARS[rng.usize(CHARS.len())] as char)
            .collect();
        let src = format!("p('{name}').");
        let db1 = parse_database(&src).unwrap();
        let printed = pretty::facts(&db1);
        let db2 = parse_database(&printed).unwrap();
        assert_eq!(db1.fact_count(), db2.fact_count(), "name {name:?}");
    }
}
