//! Parser robustness: arbitrary input never panics (errors are typed and
//! positioned), and pretty-printing round-trips through the parser.

use dduf::datalog::parser::{parse_database, parse_events, parse_program};
use dduf::datalog::pretty;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No input string can panic the parser.
    #[test]
    fn arbitrary_strings_never_panic(src in ".*") {
        let _ = parse_program(&src);
        let _ = parse_events(&src);
    }

    /// Inputs built from the language's own token alphabet never panic
    /// (denser coverage of near-valid programs than fully random bytes).
    #[test]
    fn token_soup_never_panics(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("p".to_string()),
                Just("q(a)".to_string()),
                Just("X".to_string()),
                Just(":-".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just("not".to_string()),
                Just("+".to_string()),
                Just("-".to_string()),
                Just("#view".to_string()),
                Just("#domain".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("/".to_string()),
                Just("1".to_string()),
                Just("'qu oted'".to_string()),
                Just("%comment\n".to_string()),
            ],
            0..24,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_program(&src);
        let _ = parse_events(&src);
    }

    /// Pretty-printed databases re-parse to the same program and facts.
    #[test]
    fn pretty_parse_fixpoint(
        n_facts in 0usize..6,
        with_denial in proptest::bool::ANY,
        with_cond in proptest::bool::ANY,
    ) {
        let mut src = String::new();
        if with_cond {
            src.push_str("#cond c/1.\nc(X) :- b(X), not r(X).\n");
        }
        src.push_str("v(X) :- b(X), not r(X).\n");
        if with_denial {
            src.push_str(":- v(X), not w(X).\nw(X) :- b(X).\n");
        }
        for i in 0..n_facts {
            src.push_str(&format!("b(k{i}).\n"));
            if i % 2 == 0 {
                src.push_str(&format!("r(k{i}).\n"));
            }
        }
        let db1 = parse_database(&src).unwrap();
        let printed1 = format!("{}{}", pretty::program(db1.program()), pretty::facts(&db1));
        let db2 = parse_database(&printed1).unwrap();
        let printed2 = format!("{}{}", pretty::program(db2.program()), pretty::facts(&db2));
        prop_assert_eq!(printed1, printed2);
        prop_assert_eq!(db1.fact_count(), db2.fact_count());
        prop_assert_eq!(db1.program().rules().len(), db2.program().rules().len());
    }

    /// Quoted symbols with unusual characters survive the round trip.
    #[test]
    fn quoted_symbols_round_trip(name in "[a-zA-Z0-9 _.,;:+*-]{1,12}") {
        prop_assume!(!name.contains('\''));
        let src = format!("p('{name}').");
        let db1 = parse_database(&src).unwrap();
        let printed = pretty::facts(&db1);
        let db2 = parse_database(&printed).unwrap();
        prop_assert_eq!(db1.fact_count(), db2.fact_count());
    }
}
