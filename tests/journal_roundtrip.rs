//! Property test backing the journal format: the surface syntax the
//! journal and snapshots are written in must round-trip through the
//! parser as the identity — `parse(print(x)) == x` for whole databases
//! (snapshots) and for transactions (journal records).
//!
//! Like `tests/parser_robustness.rs`, this is the in-tree proptest
//! replacement: deterministic fuzz loops over `dduf::core::rng` with
//! fixed seeds, preceded by a replayed regression corpus (the pattern of
//! `tests/parser_robustness.proptest-regressions` — shrunk failures are
//! promoted into `REGRESSIONS` so every future run retries them first).

use dduf::core::rng::Rng;
use dduf::datalog::parser::parse_database;
use dduf::datalog::pretty;
use dduf::persist::serialize_transaction;
use dduf::prelude::*;

/// Database sources that once exposed (or plausibly expose) round-trip
/// bugs: quoted symbols needing re-quoting, negative and zero integers,
/// zero-arity predicates, domain/cond directives, empty relations.
const DB_REGRESSIONS: &[&str] = &[
    "p('A').",                       // uppercase symbol must stay quoted
    "p('qu oted'). q('a;b, c:-d').", // spaces and operator characters
    "n(-1). n(0). n(42).",           // integer constants
    "flag. v :- flag, not off.",     // zero-arity predicates
    "#domain {z}. #domain la/1 {ana, ben}. la(ana).",
    "#cond c/1. c(X) :- b(X), not r(X). b(k0). r(k0).",
    ":- v(X), not w(X). v(X) :- b(X), not r(X). w(X) :- b(X). b(a).",
];

/// Transaction sources replayed before random exploration.
const TXN_REGRESSIONS: &[&str] = &[
    "+p(a).",
    "-p(a).",
    "+p(a). -p(b). +q(a, b).",
    "+p('Qu oted'). -q(-3, 'A').",
    "+flag.",
    "",
];

/// A database whose base predicates cover everything the transaction
/// generator emits.
fn txn_db() -> Database {
    parse_database(
        "v(X) :- p(X), not q(X, X).
         p(seed). q(seed, seed). flag.",
    )
    .unwrap()
}

fn roundtrip_db(src: &str) {
    let db1 = match parse_database(src) {
        Ok(db) => db,
        Err(e) => panic!("regression source must parse: {e}\n{src}"),
    };
    let printed1 = pretty::database(&db1);
    let db2 = parse_database(&printed1)
        .unwrap_or_else(|e| panic!("printed form must re-parse: {e}\n{printed1}"));
    let printed2 = pretty::database(&db2);
    assert_eq!(printed1, printed2, "print∘parse must be a fixpoint");
    assert_eq!(db1.fact_count(), db2.fact_count(), "{src}");
    assert_eq!(
        db1.program().rules().len(),
        db2.program().rules().len(),
        "{src}"
    );
}

fn roundtrip_txn(db: &Database, src: &str) {
    let txn1 = Transaction::parse(db, src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let serialized = serialize_transaction(&txn1);
    let txn2 = Transaction::parse(db, &serialized)
        .unwrap_or_else(|e| panic!("serialized form must re-parse: {e}\n{serialized}"));
    assert_eq!(txn1, txn2, "journal payload {serialized:?} is not identity");
    // The serialization is itself a fixpoint.
    assert_eq!(serialized, serialize_transaction(&txn2));
}

#[test]
fn regression_corpus_round_trips() {
    for src in DB_REGRESSIONS {
        roundtrip_db(src);
    }
    let db = txn_db();
    for src in TXN_REGRESSIONS {
        roundtrip_txn(&db, src);
    }
}

/// Pool of constants mixing every lexical class the journal must survive.
const CONSTS: &[&str] = &[
    "a",
    "b",
    "k0",
    "dolors",
    "'A'",
    "'Qu oted'",
    "'x y z'",
    "0",
    "1",
    "-7",
    "42",
    "'0a'",
];

/// Randomized snapshots: databases with random base facts (every constant
/// class), views over them, sometimes a denial and a condition predicate.
#[test]
fn random_databases_round_trip() {
    let mut rng = Rng::new(0x5EED_00DB);
    for _ in 0..96 {
        let mut src = String::new();
        let n_base = 1 + rng.usize(3);
        let arity2 = rng.bool();
        if rng.bool() {
            src.push_str("#domain {zdef}.\n");
        }
        // A view over b0 (negating b1 when present), a chained view, and
        // optionally a denial and a #cond.
        src.push_str(if n_base > 1 {
            "v(X) :- b0(X), not b1(X).\n"
        } else {
            "v(X) :- b0(X).\n"
        });
        src.push_str("w(X) :- v(X).\n");
        if rng.bool() {
            src.push_str(":- w(X), not b0(X).\n");
        }
        if rng.bool() {
            src.push_str("#cond c/1.\nc(X) :- b0(X).\n");
        }
        if arity2 {
            src.push_str("v2(X, Y) :- e(X, Y), not b0(Y).\n");
        }
        for b in 0..n_base {
            for _ in 0..rng.usize(5) {
                src.push_str(&format!("b{b}({}).\n", rng.choose(CONSTS)));
            }
        }
        if arity2 {
            for _ in 0..rng.usize(4) {
                src.push_str(&format!(
                    "e({}, {}).\n",
                    rng.choose(CONSTS),
                    rng.choose(CONSTS)
                ));
            }
        }
        roundtrip_db(&src);
    }
}

/// Randomized journal records: transactions of random ground base events
/// (conflict-free by construction, as `Transaction` requires) serialize
/// and re-parse to the identical event set.
#[test]
fn random_transactions_round_trip() {
    let mut rng = Rng::new(0x5EED_007C);
    let db = txn_db();
    for _ in 0..192 {
        let n = rng.usize(7);
        let mut seen = std::collections::BTreeSet::new();
        let mut src = String::new();
        for _ in 0..n {
            let (pred, args) = if rng.bool() {
                ("p", format!("({})", rng.choose(CONSTS)))
            } else if rng.bool() {
                (
                    "q",
                    format!("({}, {})", rng.choose(CONSTS), rng.choose(CONSTS)),
                )
            } else {
                ("flag", String::new())
            };
            let atom = format!("{pred}{args}");
            if !seen.insert(atom.clone()) {
                continue; // same atom twice could conflict (+x. -x.)
            }
            let sigil = if rng.bool() { '+' } else { '-' };
            src.push_str(&format!("{sigil}{atom}. "));
        }
        roundtrip_txn(&db, &src);
    }
}

/// End to end: a random transaction written through a real journal comes
/// back byte-identical from the scan, and replaying it yields the same
/// state as committing it directly.
#[test]
fn random_journal_write_scan_replay() {
    use dduf::persist::{journal, DurableDb};
    let mut rng = Rng::new(0x5EED_0010);
    let dir = std::env::temp_dir().join(format!("dduf_jrt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let schema = "v(X) :- p(X), not q(X, X).\np(seed). q(seed, seed). flag.\n";
    let mut db = DurableDb::init(&dir, schema).unwrap();
    let mut payloads = Vec::new();
    for round in 0..24 {
        let c = CONSTS[rng.usize(CONSTS.len())].to_string();
        let src = match round % 3 {
            0 => format!("+p({c})."),
            1 => format!("+q({c}, {c})."),
            _ => format!("-p({c}). +p(r{round})."),
        };
        let txn = match db.transaction(&src) {
            Ok(t) => t,
            Err(_) => continue, // e.g. deleting an absent fact conflicts: skip
        };
        payloads.push(serialize_transaction(&txn));
        db.commit(&txn).unwrap();
    }
    let final_state = pretty::database(db.processor().database());
    drop(db);

    let scan = journal::scan(&dir.join(dduf::persist::JOURNAL_FILE)).unwrap();
    let stored: Vec<String> = scan.records.iter().map(|r| r.payload.clone()).collect();
    assert_eq!(stored, payloads, "journal must store the exact payloads");

    let reopened = DurableDb::open(&dir).unwrap();
    assert_eq!(
        pretty::database(reopened.processor().database()),
        final_state
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
