//! End-to-end reproduction of every worked example in the paper, through
//! the public API (parser → processor). These are the ground-truth
//! artifacts of EXPERIMENTS.md rows P-EX3.1 … P-EX5.3.

use dduf::core::problems::ic_checking::CheckOutcome;
use dduf::core::testkit;
use dduf::prelude::*;
use dduf_events::event::EventAtom;

/// Example 3.1: the transition rule of `P(x) ← Q(x) ∧ ¬R(x)` is the
/// four-disjunct DNF printed in §3.2, in the paper's order.
#[test]
fn example_3_1_transition_rule() {
    let db = testkit::example_db();
    let tr = TransitionRule::build(db.program(), Pred::new("p", 1));
    assert_eq!(tr.branches.len(), 1);
    let rendered: Vec<String> = tr.branches[0].dnf.0.iter().map(|c| c.to_string()).collect();
    assert_eq!(
        rendered,
        vec![
            // (Q°(x) ∧ ¬δQ(x) ∧ ¬R°(x) ∧ ¬ιR(x))
            "qᵒ(X) ∧ not del q(X) ∧ not rᵒ(X) ∧ not ins r(X)",
            // (Q°(x) ∧ ¬δQ(x) ∧ δR(x))
            "qᵒ(X) ∧ not del q(X) ∧ del r(X)",
            // (ιQ(x) ∧ ¬R°(x) ∧ ¬ιR(x))
            "ins q(X) ∧ not rᵒ(X) ∧ not ins r(X)",
            // (ιQ(x) ∧ δR(x))
            "ins q(X) ∧ del r(X)",
        ]
    );
}

/// Example 4.1: T = {δR(B)} induces exactly {ιP(B)}.
#[test]
fn example_4_1_upward() {
    let db = testkit::example_db();
    let proc = UpdateProcessor::new(db).unwrap();
    let txn = proc.transaction("-r(b).").unwrap();
    let res = proc.upward(&txn).unwrap();
    assert_eq!(res.derived.to_string(), "{+p(b)}");
}

/// Example 4.2: the downward interpretation of ιP(B) is
/// (δR(B) ∧ ¬δQ(B)) — one alternative: perform {-r(b)}, avoiding {-q(b)}.
#[test]
fn example_4_2_downward() {
    let db = testkit::example_db();
    let proc = UpdateProcessor::new(db).unwrap();
    let req = Request::new().achieve(EventKind::Ins, Atom::ground("p", vec![Const::sym("b")]));
    let res = proc.translate_view_update(&req).unwrap();
    assert_eq!(res.alternatives.len(), 1);
    assert_eq!(res.alternatives[0].to_do.to_string(), "{-r(b)}");
    assert_eq!(res.alternatives[0].must_not.to_string(), "{-q(b)}");
    // Applying T = {δR(B)} accomplishes the insertion (paper's closing
    // sentence of the example).
    let txn = res.alternatives[0].to_transaction(proc.database()).unwrap();
    let up = proc.upward(&txn).unwrap();
    assert!(up.derived.to_string().contains("+p(b)"));
}

/// Example 5.1: T = {δU_benefit(Dolors)} violates Ic1; the result of
/// upward-interpreting ιIc1 is {ιIc1} and the transaction is rejected.
#[test]
fn example_5_1_integrity_checking() {
    let db = testkit::employment_db();
    let proc = UpdateProcessor::new(db).unwrap();
    let txn = proc.transaction("-u_benefit(dolors).").unwrap();
    match proc.check_integrity(&txn).unwrap() {
        CheckOutcome::Violated(events) => {
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].to_string(), "+ic1");
        }
        other => panic!("expected violation, got {other:?}"),
    }
}

/// Example 5.2: the downward interpretation of δUnemp(Dolors) is
/// (δLa(Dolors) ∨ ιWorks(Dolors)): translations T1 = {δLa(Dolors)} and
/// T2 = {ιWorks(Dolors)}.
#[test]
fn example_5_2_view_updating() {
    let db = testkit::employment_db();
    let proc = UpdateProcessor::new(db).unwrap();
    let req = Request::new().achieve(
        EventKind::Del,
        Atom::ground("unemp", vec![Const::sym("dolors")]),
    );
    let res = proc.translate_view_update(&req).unwrap();
    let mut shown: Vec<String> = res
        .alternatives
        .iter()
        .map(|a| a.to_do.to_string())
        .collect();
    shown.sort();
    assert_eq!(shown, vec!["{+works(dolors)}", "{-la(dolors)}"]);
}

/// Example 5.3: the downward interpretation of
/// {ιLa(Maria), ¬ιUnemp(Maria)} is
/// [(ιLa(Maria) ∧ ¬ιLa(Maria)) ∨ (ιLa(Maria) ∧ ιWorks(Maria))]; after
/// dropping the contradiction, the only resulting transaction is
/// T = {ιLa(Maria), ιWorks(Maria)}.
#[test]
fn example_5_3_preventing_side_effects() {
    let db = testkit::employment_db();
    let proc = UpdateProcessor::new(db).unwrap();
    let txn = proc.transaction("+la(maria).").unwrap();
    let res = proc
        .prevent_side_effects(
            &txn,
            &[EventAtom::ins(Atom::ground(
                "unemp",
                vec![Const::sym("maria")],
            ))],
        )
        .unwrap();
    assert_eq!(res.alternatives.len(), 1);
    assert_eq!(
        res.alternatives[0].to_do.to_string(),
        "{+la(maria), +works(maria)}"
    );
}

/// Section 5.1 preamble: the same rule body can play all three roles —
/// Ic, View, Cond — and the framework treats them uniformly.
#[test]
fn one_rule_three_roles() {
    let db = parse_database(
        "#view v/1. #cond c/1.
         q(a). q(b). r(a). r(b).
         v(X) :- q(X), not r(X).
         c(X) :- q(X), not r(X).
         :- q(X), not r(X).",
    )
    .unwrap();
    let proc = UpdateProcessor::new(db).unwrap();
    let txn = proc.transaction("-r(b).").unwrap();
    let up = proc.upward(&txn).unwrap();
    // The same event fires under all three readings.
    assert!(up.derived.to_string().contains("+v(b)"));
    assert!(up.derived.to_string().contains("+c(b)"));
    assert!(up.derived.to_string().contains("+ic1"));
}
