//! Round-trip testing of the intro figure: every alternative produced by
//! the **downward** interpretation, replayed **upward**, must realize the
//! requested events (soundness), and on tiny domains the downward result
//! must cover every minimal transaction that brute-force search finds
//! (completeness).
//!
//! The proptest version sampled tower shapes at random; the
//! configuration space is small enough to sweep exhaustively, which is
//! strictly stronger and needs no external dependency.

use dduf::core::testkit::{tower_db, TowerShape};
use dduf::prelude::*;

/// All subsets of candidate base events up to the given size.
fn enumerate_transactions(db: &Database, max_size: usize) -> Vec<Vec<GroundEvent>> {
    // Candidate events: toggle any base fact over the active domain.
    let mut candidates = Vec::new();
    let domain: Vec<Const> = db.active_domain().into_iter().collect();
    let mut base_preds: Vec<Pred> = Vec::new();
    for (pred, role) in db.program().predicates() {
        if matches!(role, Role::Base) && pred.arity == 1 {
            base_preds.push(pred);
        }
    }
    for &pred in &base_preds {
        for &c in &domain {
            let t = Tuple::new(vec![c]);
            if db.relation(pred).contains(&t) {
                candidates.push(GroundEvent::del(pred, t));
            } else {
                candidates.push(GroundEvent::ins(pred, t));
            }
        }
    }
    // Subsets up to max_size.
    let mut out: Vec<Vec<GroundEvent>> = vec![vec![]];
    for e in candidates {
        let mut extended = Vec::new();
        for set in &out {
            if set.len() < max_size {
                let mut s2 = set.clone();
                s2.push(e.clone());
                extended.push(s2);
            }
        }
        out.extend(extended);
    }
    out
}

/// Soundness: every downward alternative realizes the request. Swept
/// exhaustively over depth × facts-per-level × negation × target.
#[test]
fn downward_alternatives_replay_upward() {
    for depth in 1usize..4 {
        for facts in 1usize..4 {
            for with_negation in [false, true] {
                for target in 0usize..3 {
                    let db = tower_db(TowerShape {
                        depth,
                        facts_per_level: facts,
                        with_negation,
                    });
                    let old = materialize(&db).unwrap();
                    let view = Pred::new(&format!("v{depth}"), 1);
                    let c = Const::sym(&format!("c{}", target % facts));
                    // Deleting the top of the tower for one constant; it
                    // currently holds for every constant.
                    let req = Request::new().achieve(
                        EventKind::Del,
                        Atom::new(view.name.as_str(), vec![c.into()]),
                    );
                    let res = dduf::core::downward::interpret_with(
                        &db,
                        &old,
                        &req,
                        &DownwardOptions::default(),
                    )
                    .unwrap();
                    assert!(
                        !res.alternatives.is_empty(),
                        "tower deletions always possible (depth {depth}, facts {facts})"
                    );
                    for alt in &res.alternatives {
                        let ok = dduf::core::downward::verify(&db, &old, &req, alt).unwrap();
                        assert!(
                            ok,
                            "alternative {alt} fails to realize the request \
                             (depth {depth}, facts {facts}, neg {with_negation})"
                        );
                    }
                }
            }
        }
    }
}

/// Completeness vs brute force on tiny instances: every transaction of
/// size ≤ 2 that realizes the request (without violating any
/// alternative's must_not) is covered by — i.e. is a superset of the
/// to_do of — some downward alternative.
#[test]
fn downward_covers_bruteforce() {
    for facts in 1usize..3 {
        for with_negation in [false, true] {
            let db = tower_db(TowerShape {
                depth: 2,
                facts_per_level: facts,
                with_negation,
            });
            let old = materialize(&db).unwrap();
            let view = Pred::new("v2", 1);
            let c = Const::sym("c0");
            let req = Request::new().achieve(
                EventKind::Del,
                Atom::new(view.name.as_str(), vec![c.into()]),
            );
            let res =
                dduf::core::downward::interpret_with(&db, &old, &req, &DownwardOptions::default())
                    .unwrap();

            for events in enumerate_transactions(&db, 2) {
                if events.is_empty() {
                    continue;
                }
                let Ok(txn) = Transaction::from_events(&db, events.clone()) else {
                    continue;
                };
                let new = materialize(&txn.apply(&db)).unwrap();
                let realizes = !new.relation(view).contains(&Tuple::new(vec![c]));
                if realizes {
                    let covered = res.alternatives.iter().any(|alt| {
                        alt.to_do.iter().all(|e| txn.events().contains(&e))
                            && alt.must_not.iter().all(|e| !txn.events().contains(&e))
                    });
                    assert!(
                        covered,
                        "brute-force solution {:?} not covered by downward result {:?}",
                        events.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
                        res.alternatives
                            .iter()
                            .map(|a| a.to_string())
                            .collect::<Vec<_>>()
                    );
                }
            }
        }
    }
}
