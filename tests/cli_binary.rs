//! End-to-end test of the `dduf` shell binary: drive it with a piped
//! script (the non-interactive mode) and check the printed answers.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn run_script(db_src: &str, script: &str) -> (String, String) {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dduf_bin_test_{}.dl", std::process::id()));
    std::fs::write(&path, db_src).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .arg(&path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let _ = std::fs::remove_file(&path);
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const EMPLOYMENT: &str = "la(dolors). u_benefit(dolors).
unemp(X) :- la(X), not works(X).
:- unemp(X), not u_benefit(X).
";

#[test]
fn scripted_session_runs_the_catalog() {
    let (stdout, stderr) = run_script(
        EMPLOYMENT,
        ":check -u_benefit(dolors).
:update -unemp(dolors).
:do 1
:show
:quit
",
    );
    assert!(
        stdout.contains("REJECT"),
        "stdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("[1]"), "{stdout}");
    assert!(stdout.contains("committed"), "{stdout}");
    // After committing {+works(dolors)}, unemp is empty (the `:show`
    // listing must not include it as a derived fact); u_benefit remains.
    assert!(stdout.contains("u_benefit(dolors)."), "{stdout}");
    assert!(!stdout.contains("unemp(dolors). %= derived"), "{stdout}");
    // The induced deletion was reported during the commit.
    assert!(stdout.contains("induced {-unemp(dolors)}"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn errors_go_to_stderr_and_session_survives() {
    let (stdout, stderr) = run_script(
        EMPLOYMENT,
        ":nonsense
:check +works(dolors).
",
    );
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stdout.contains("ok"), "{stdout}");
}

fn dduf(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dduf"))
        .args(args)
        .stdin(Stdio::null())
        .output()
        .unwrap()
}

fn dduf_piped(args: &[&str], script: &str) -> std::process::Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    child.wait_with_output().unwrap()
}

#[test]
fn version_and_help_flags() {
    for flag in ["--version", "-V"] {
        let out = dduf(&[flag]);
        assert!(out.status.success(), "{flag}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(env!("CARGO_PKG_VERSION")),
            "{flag}: {stdout}"
        );
    }
    for flag in ["--help", "-h", "help"] {
        let out = dduf(&[flag]);
        assert!(out.status.success(), "{flag}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        for verb in [
            "lint",
            "db init",
            "db open",
            "db checkpoint",
            "db log",
            "db verify",
        ] {
            assert!(stdout.contains(verb), "{flag} must list `{verb}`: {stdout}");
        }
    }
}

#[test]
fn usage_errors_exit_two_not_file_not_found() {
    // An unrecognized flag is a usage error, not a file path.
    let out = dduf(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unrecognized flag"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    // No arguments at all: usage on stderr, exit 2.
    let out = dduf(&[]);
    assert_eq!(out.status.code(), Some(2));
    // Extra operands after the database file.
    let out = dduf(&["a.dl", "b.dl"]);
    assert_eq!(out.status.code(), Some(2));
    // Unknown db subcommand.
    let out = dduf(&["db", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn db_verbs_round_trip_a_durable_session() {
    let base = std::env::temp_dir().join(format!("dduf_bin_db_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let schema = base.join("schema.dl");
    std::fs::write(&schema, EMPLOYMENT).unwrap();
    let dir = base.join("db");
    let schema = schema.to_str().unwrap();
    let dir = dir.to_str().unwrap();

    // init
    let out = dduf(&["db", "init", schema, dir]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("initialized"));

    // open: commit through the interactive session (piped script).
    let out = dduf_piped(&["db", "open", dir], ":force +works(dolors).\n:quit\n");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("applied {+works(dolors)}"), "{stdout}");

    // log: the journaled record is shown.
    let out = dduf(&["db", "log", dir]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("+works(dolors)."), "{stdout}");
    assert!(stdout.contains("1 record(s)"), "{stdout}");

    // verify: clean.
    let out = dduf(&["db", "verify", dir]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok:"), "{stdout}");

    // The committed state is visible on reopen.
    let out = dduf_piped(&["db", "open", dir], ":show works\n:quit\n");
    assert!(String::from_utf8_lossy(&out.stdout).contains("works(dolors)."));

    // checkpoint, then verify again.
    let out = dduf(&["db", "checkpoint", dir]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = dduf(&["db", "verify", dir]);
    assert!(out.status.success());

    // Corrupt one journal payload byte: verify must fail naming record 0.
    let journal = std::path::Path::new(dir).join("journal.log");
    let mut bytes = std::fs::read(&journal).unwrap();
    let flip = 8 + 8 + 1; // magic + record header + 1 byte into the payload
    bytes[flip] ^= 0x40;
    std::fs::write(&journal, &bytes).unwrap();
    let out = dduf(&["db", "verify", dir]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("record 0"), "{stderr}");
    assert!(stderr.contains("checksum mismatch"), "{stderr}");
    // And open refuses too (mid-log damage is never truncated silently).
    let out = dduf_piped(&["db", "open", dir], ":quit\n");
    assert_eq!(out.status.code(), Some(1));

    std::fs::remove_dir_all(&base).unwrap();
}

/// Write verbs against a directory whose `dduf.lock` is held by a live
/// process must exit 1 with the clear "locked by another process"
/// diagnostic (not a raw debug string), while the read-only verbs keep
/// working lock-free.
#[test]
fn locked_database_rejects_write_verbs_with_a_clear_message() {
    let base = std::env::temp_dir().join(format!("dduf_bin_lock_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let schema = base.join("schema.dl");
    std::fs::write(&schema, EMPLOYMENT).unwrap();
    let dir = base.join("db");
    let out = dduf(&[
        "db",
        "init",
        schema.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Hold the directory lock the way a running server does.
    let held = dduf::persist::DurableDb::open(&dir).unwrap();

    for verb in ["checkpoint", "init"] {
        let out = if verb == "init" {
            dduf(&[
                "db",
                "init",
                schema.to_str().unwrap(),
                dir.to_str().unwrap(),
            ])
        } else {
            dduf(&["db", verb, dir.to_str().unwrap()])
        };
        assert_eq!(out.status.code(), Some(1), "db {verb} against a locked dir");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("locked by another process"),
            "db {verb}: {stderr}"
        );
        assert!(
            stderr.contains("dduf serve"),
            "db {verb} should hint at who owns the lock: {stderr}"
        );
        assert!(
            !stderr.contains("Locked("),
            "db {verb} leaked a debug rendering: {stderr}"
        );
    }

    // Read-only verbs deliberately skip the lock.
    for verb in ["verify", "log"] {
        let out = dduf(&["db", verb, dir.to_str().unwrap()]);
        assert!(
            out.status.success(),
            "db {verb} must not need the lock: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Releasing the lock makes the write verbs work again.
    drop(held);
    let out = dduf(&["db", "checkpoint", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn bad_database_file_reports_and_exits_nonzero() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dduf_bin_bad_{}.dl", std::process::id()));
    std::fs::write(&path, "p(X) :- not q(X).").unwrap(); // unsafe rule
    let out = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .arg(&path)
        .stdin(Stdio::null())
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not allowed"), "{stderr}");
}
