//! End-to-end test of the `dduf` shell binary: drive it with a piped
//! script (the non-interactive mode) and check the printed answers.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn run_script(db_src: &str, script: &str) -> (String, String) {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dduf_bin_test_{}.dl", std::process::id()));
    std::fs::write(&path, db_src).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .arg(&path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    let _ = std::fs::remove_file(&path);
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const EMPLOYMENT: &str = "la(dolors). u_benefit(dolors).
unemp(X) :- la(X), not works(X).
:- unemp(X), not u_benefit(X).
";

#[test]
fn scripted_session_runs_the_catalog() {
    let (stdout, stderr) = run_script(
        EMPLOYMENT,
        ":check -u_benefit(dolors).
:update -unemp(dolors).
:do 1
:show
:quit
",
    );
    assert!(
        stdout.contains("REJECT"),
        "stdout: {stdout}\nstderr: {stderr}"
    );
    assert!(stdout.contains("[1]"), "{stdout}");
    assert!(stdout.contains("committed"), "{stdout}");
    // After committing {+works(dolors)}, unemp is empty (the `:show`
    // listing must not include it as a derived fact); u_benefit remains.
    assert!(stdout.contains("u_benefit(dolors)."), "{stdout}");
    assert!(!stdout.contains("unemp(dolors). %= derived"), "{stdout}");
    // The induced deletion was reported during the commit.
    assert!(stdout.contains("induced {-unemp(dolors)}"), "{stdout}");
    assert!(stderr.is_empty(), "unexpected stderr: {stderr}");
}

#[test]
fn errors_go_to_stderr_and_session_survives() {
    let (stdout, stderr) = run_script(
        EMPLOYMENT,
        ":nonsense
:check +works(dolors).
",
    );
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stdout.contains("ok"), "{stdout}");
}

#[test]
fn bad_database_file_reports_and_exits_nonzero() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dduf_bin_bad_{}.dl", std::process::id()));
    std::fs::write(&path, "p(X) :- not q(X).").unwrap(); // unsafe rule
    let out = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .arg(&path)
        .stdin(Stdio::null())
        .output()
        .unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not allowed"), "{stderr}");
}
