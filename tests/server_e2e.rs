//! End-to-end suite for `dduf serve`: a real server process, real TCP
//! clients, and the two contracts that define the server (DESIGN.md
//! §14):
//!
//! * **Serial equivalence** — whatever interleaving concurrent clients
//!   produce, the final durable state is bit-identical to replaying the
//!   journal's transactions serially through a plain in-memory
//!   processor. Group commit batches fsyncs, never semantics.
//! * **Durability of acknowledgement** — a SIGKILL at any moment loses
//!   at most unacknowledged work: every `:apply` a client saw `ok` for
//!   is in the recovered state.

use dduf::prelude::*;
use dduf::server::proto::read_response;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const SCHEMA: &str = "item(seed, s0). view(X) :- item(X, Y).";

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dduf_e2e_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Creates a durable database and releases it (the server process must
/// be able to take the directory lock).
fn make_db(dir: &Path) {
    drop(dduf::persist::DurableDb::init(dir, SCHEMA).unwrap());
}

/// Spawns `dduf serve` on an ephemeral port and parses the bound
/// address from its stdout. The returned reader keeps the stdout pipe
/// open for the child's lifetime (dropping it would turn the server's
/// final status prints into broken-pipe panics).
fn spawn_server(
    dir: &Path,
    threads: &str,
) -> (Child, SocketAddr, BufReader<std::process::ChildStdout>) {
    spawn_server_with(dir, threads, &[], &[])
}

/// `spawn_server` plus extra `dduf serve` flags and environment
/// variables (fault hooks like `DDUF_SYNC_DELAY_US`).
fn spawn_server_with(
    dir: &Path,
    threads: &str,
    extra_args: &[&str],
    envs: &[(&str, &str)],
) -> (Child, SocketAddr, BufReader<std::process::ChildStdout>) {
    let mut args = vec![
        "--threads",
        threads,
        "serve",
        dir.to_str().unwrap(),
        "--addr",
        "127.0.0.1:0",
        "--sessions",
        "4",
    ];
    args.extend_from_slice(extra_args);
    let mut child = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .args(&args)
        .envs(envs.iter().copied())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            reader.read_line(&mut line).unwrap(),
            0,
            "server exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.parse().unwrap();
        }
    };
    (child, addr, reader)
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) -> (bool, Vec<String>) {
        writeln!(self.stream, "{line}").unwrap();
        read_response(&mut self.reader).unwrap()
    }
}

/// Replays the journal serially through a fresh in-memory processor and
/// asserts the recovered durable state renders bit-identically.
fn assert_serial_equivalence(dir: &Path) -> String {
    let (_, scan) = dduf::persist::read_log(dir).unwrap();
    let mut replay = UpdateProcessor::new(parse_database(SCHEMA).unwrap()).unwrap();
    for r in &scan.records {
        let txn = replay.transaction(&r.payload).unwrap();
        replay.commit(&txn).unwrap();
    }
    let recovered = dduf::persist::DurableDb::open(dir).unwrap();
    let state = dduf::datalog::pretty::database(recovered.processor().database());
    assert_eq!(
        dduf::datalog::pretty::database(replay.database()),
        state,
        "recovered state is not a serial replay of the journal"
    );
    state
}

/// Four concurrent clients mixing commits, queries, and checks; the
/// final state must equal the serial replay of the journal and contain
/// every acknowledged fact. Runs the whole exercise at 1 and at 8
/// evaluation threads — results must not depend on the pool size.
#[test]
fn concurrent_clients_end_in_a_serially_equivalent_state() {
    for threads in ["1", "8"] {
        let dir = tmpdir(&format!("conc{threads}"));
        make_db(&dir);
        let (mut child, addr, _stdout) = spawn_server(&dir, threads);

        let workers: Vec<_> = (0..4)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut acked = Vec::new();
                    for i in 0..12 {
                        let fact = format!("item(c{c}, i{i})");
                        let (ok, lines) = client.send(&format!(":apply +{fact}."));
                        assert!(ok, "client {c} commit {i}: {lines:?}");
                        assert!(lines[0].starts_with("applied"), "{lines:?}");
                        acked.push(fact);
                        // Read-your-writes on the same connection.
                        let (ok, lines) = client.send(&format!(":query view(c{c})"));
                        assert!(ok, "{lines:?}");
                        assert!(
                            lines.iter().any(|l| l == &format!("view(c{c})")),
                            "client {c} step {i}: own write invisible: {lines:?}"
                        );
                        // Reads never fail mid-stream.
                        let (ok, _) = client.send(":check +item(probe, p).");
                        assert!(ok);
                    }
                    let (ok, _) = client.send(":quit");
                    assert!(ok);
                    acked
                })
            })
            .collect();
        let acked: Vec<String> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect();
        assert_eq!(acked.len(), 48);

        let mut admin = Client::connect(addr);
        let (ok, lines) = admin.send(":stats");
        assert!(ok);
        assert!(
            lines.iter().any(|l| l.starts_with("journal: durable")),
            "{lines:?}"
        );
        let (ok, _) = admin.send(":shutdown");
        assert!(ok);
        assert!(child.wait().unwrap().success());

        let state = assert_serial_equivalence(&dir);
        for fact in &acked {
            assert!(
                state.contains(fact.as_str()),
                "{fact} missing after shutdown"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// SIGKILL mid-run: the journal recovers to a clean prefix that
/// includes every acknowledged commit.
#[test]
fn sigkill_recovers_every_acknowledged_commit() {
    let dir = tmpdir("kill");
    make_db(&dir);
    let (mut child, addr, _stdout) = spawn_server(&dir, "1");

    let mut client = Client::connect(addr);
    let mut acked = Vec::new();
    for i in 0..10 {
        let fact = format!("item(k, i{i})");
        let (ok, lines) = client.send(&format!(":apply +{fact}."));
        assert!(ok, "{lines:?}");
        acked.push(fact);
    }
    // One more request goes out, then the process dies mid-flight —
    // that one may or may not have made it; everything acked must have.
    writeln!(client.stream, ":apply +item(k, unacked).").unwrap();
    child.kill().unwrap();
    child.wait().unwrap();

    let state = assert_serial_equivalence(&dir);
    for fact in &acked {
        assert!(state.contains(fact.as_str()), "{fact} lost by SIGKILL");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression for the framing fix: body lines whose *content* contains
/// framing bytes must arrive byte-exact. A quoted symbol embedding a
/// CRLF splits into a body line that ends with a carriage return — the
/// byte the old reader's terminator stripping silently ate — and error
/// responses are deliberately multi-line without desynchronizing the
/// stream.
#[test]
fn framing_bytes_in_content_survive_the_wire() {
    let dir = tmpdir("framing");
    // The CRLF lives in a quoted symbol, so `:show` renders a line that
    // is split across two wire lines, the first ending in '\r'.
    let schema = "item('win\r\nstyle', s9). item(seed, s0). view(X) :- item(X, Y).";
    drop(dduf::persist::DurableDb::init(&dir, schema).unwrap());
    let (mut child, addr, _stdout) = spawn_server(&dir, "1");
    let mut client = Client::connect(addr);

    // A symbol with an embedded CR commits over the wire and queries
    // back byte-exact (the request line carries the raw CR mid-line).
    let (ok, lines) = client.send(":apply +item('cr\rmid', s1).");
    assert!(ok, "{lines:?}");
    let (ok, lines) = client.send(":query view(X)");
    assert!(ok);
    assert!(
        lines.iter().any(|l| l == "view('cr\rmid')"),
        "embedded CR corrupted in transit: {lines:?}"
    );

    // The CRLF symbol shows up as two wire lines; the first keeps its
    // trailing '\r' and joining reconstructs the rendered fact exactly.
    let (ok, lines) = client.send(":show item");
    assert!(ok);
    assert!(
        lines.iter().any(|l| l.ends_with('\r')),
        "trailing CR stripped from a content line: {lines:?}"
    );
    assert!(
        lines.join("\n").contains("item('win\r\nstyle', s9)."),
        "CRLF symbol corrupted in transit: {lines:?}"
    );

    // A deliberately multi-line response and a following error frame
    // keep the stream in sync: every line of :help arrives, the error
    // is intact, and the connection still answers.
    let (ok, help) = client.send(":help");
    assert!(ok);
    assert!(help.len() > 5, "expected the full help body: {help:?}");
    let (ok, lines) = client.send(":apply +item('oops");
    assert!(!ok);
    assert!(
        lines
            .iter()
            .any(|l| l.contains("unterminated quoted symbol")),
        "{lines:?}"
    );
    assert_eq!(client.send(":ping"), (true, vec!["pong".to_string()]));

    let (ok, _) = client.send(":shutdown");
    assert!(ok);
    assert!(child.wait().unwrap().success());

    // The committed CR fact recovers: replaying the journal serially
    // over the schema matches the recovered state (the generic helper
    // assumes the default SCHEMA, so replay locally here).
    let (_, scan) = dduf::persist::read_log(&dir).unwrap();
    let mut replay = UpdateProcessor::new(parse_database(schema).unwrap()).unwrap();
    for r in &scan.records {
        let txn = replay.transaction(&r.payload).unwrap();
        replay.commit(&txn).unwrap();
    }
    let recovered = dduf::persist::DurableDb::open(&dir).unwrap();
    let state = dduf::datalog::pretty::database(recovered.processor().database());
    assert_eq!(dduf::datalog::pretty::database(replay.database()), state);
    assert!(state.contains("item('cr\rmid', s1)."), "{state}");
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Saturating a tiny commit queue in `reject` mode: the overflow gets
/// the retryable `busy` diagnostic, every accepted commit is acked and
/// durable, `:stats` agrees with the client on the rejection count,
/// and the queue drains to depth 0 once the burst settles.
#[test]
fn backpressure_rejects_overflow_and_loses_no_accepted_commit() {
    let dir = tmpdir("backpressure");
    make_db(&dir);
    // One transaction per fsync, each fsync stretched to 20ms, and a
    // two-job high-water mark: a burst must overflow.
    let (mut child, addr, _stdout) = spawn_server_with(
        &dir,
        "1",
        &[
            "--max-batch",
            "1",
            "--queue-cap",
            "2",
            "--backpressure",
            "reject",
        ],
        &[("DDUF_SYNC_DELAY_US", "20000")],
    );
    let mut client = Client::connect(addr);

    // Stream the whole burst without reading a single response: the
    // session submits each line as it arrives, so the queue saturates.
    const BURST: usize = 30;
    for i in 0..BURST {
        writeln!(client.stream, ":apply +item(bp, i{i}).").unwrap();
    }
    let mut acked = Vec::new();
    let mut rejected = 0usize;
    for i in 0..BURST {
        let (ok, lines) = read_response(&mut client.reader).unwrap();
        if ok {
            assert!(lines[0].starts_with("applied"), "request {i}: {lines:?}");
            acked.push(format!("item(bp, i{i})"));
        } else {
            let text = lines.join("\n");
            assert!(
                text.contains("retryable"),
                "rejection must say it is retryable: {text:?}"
            );
            rejected += 1;
        }
    }
    assert!(
        rejected > 0,
        "a 30-commit burst must overflow a 2-job queue"
    );
    assert!(!acked.is_empty(), "the queue must accept some of the burst");

    // Quiescent again: a retried commit goes through, and the gauge
    // agrees with what this client observed.
    let (ok, lines) = client.send(":apply +item(bp, retried).");
    assert!(ok, "retry after backpressure must succeed: {lines:?}");
    acked.push("item(bp, retried)".to_string());
    let (ok, lines) = client.send(":stats");
    assert!(ok);
    let queue_line = lines
        .iter()
        .find(|l| l.starts_with("queue: "))
        .expect("queue gauge line in :stats");
    assert!(
        queue_line.starts_with("queue: depth 0 of 2; "),
        "queue must be drained at quiescence: {queue_line:?}"
    );
    assert!(
        queue_line.contains(&format!("{rejected} rejected")),
        "server counted differently than the client saw: {queue_line:?} \
         vs {rejected} client-observed rejections"
    );

    let (ok, _) = client.send(":shutdown");
    assert!(ok);
    assert!(child.wait().unwrap().success());

    // Every accepted commit is durable; nothing rejected leaked in.
    let state = assert_serial_equivalence(&dir);
    for fact in &acked {
        assert!(state.contains(fact.as_str()), "{fact} was acked but lost");
    }
    assert_eq!(
        state.matches("item(bp, ").count(),
        acked.len(),
        "rejected commits must not appear in the durable state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// While a server owns the directory, a second process opening it gets
/// the clear lock error instead of racing the journal.
#[test]
fn concurrent_process_is_locked_out_while_serving() {
    let dir = tmpdir("lockout");
    make_db(&dir);
    let (mut child, addr, _stdout) = spawn_server(&dir, "1");

    let out = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .args(["db", "stats", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "second opener must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("locked by another process"),
        "unexpected error text: {stderr}"
    );

    // Read-only verification deliberately works alongside the server.
    let out = Command::new(env!("CARGO_BIN_EXE_dduf"))
        .args(["db", "verify", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "verify must not need the lock");

    let mut client = Client::connect(addr);
    let (ok, _) = client.send(":shutdown");
    assert!(ok);
    assert!(child.wait().unwrap().success());
    // The lock died with the server: a local open works now.
    assert!(dduf::persist::DurableDb::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}
