//! The two negation strategies (DESIGN.md semantics decision 6) agree
//! where it matters: on every paper example they produce the same
//! minimal translations; in general greedy's alternatives are a subset of
//! exhaustive's (by `to_do` sets) and both are sound under upward replay.

use dduf::core::testkit;
use dduf::prelude::*;
use std::collections::BTreeSet;

fn todo_sets(res: &DownwardResult) -> BTreeSet<Vec<String>> {
    res.alternatives
        .iter()
        .map(|a| a.to_do.iter().map(|e| e.to_string()).collect())
        .collect()
}

fn run_both(db: &Database, req: &Request) -> (DownwardResult, DownwardResult) {
    let old = materialize(db).unwrap();
    let greedy =
        dduf::core::downward::interpret_with(db, &old, req, &DownwardOptions::default()).unwrap();
    let exhaustive = dduf::core::downward::interpret_with(
        db,
        &old,
        req,
        &DownwardOptions {
            exhaustive_negation: true,
            max_alternatives: 200_000,
            ..DownwardOptions::default()
        },
    )
    .unwrap();
    // Soundness of every alternative, both strategies.
    for (label, res) in [("greedy", &greedy), ("exhaustive", &exhaustive)] {
        for alt in &res.alternatives {
            assert!(
                dduf::core::downward::verify(db, &old, req, alt).unwrap(),
                "{label} produced unsound alternative {alt}"
            );
        }
    }
    (greedy, exhaustive)
}

#[test]
fn paper_examples_agree_across_strategies() {
    // Example 4.2.
    let db = testkit::example_db();
    let req = Request::new().achieve(EventKind::Ins, Atom::ground("p", vec![Const::sym("b")]));
    let (g, x) = run_both(&db, &req);
    assert_eq!(todo_sets(&g), todo_sets(&x));
    assert_eq!(g.alternatives.len(), 1);

    // Example 5.2.
    let db = testkit::employment_db();
    let req = Request::new().achieve(
        EventKind::Del,
        Atom::ground("unemp", vec![Const::sym("dolors")]),
    );
    let (g, x) = run_both(&db, &req);
    assert_eq!(todo_sets(&g), todo_sets(&x));
    assert_eq!(g.alternatives.len(), 2);

    // Example 5.3.
    let db = testkit::employment_db();
    let req = Request::new()
        .achieve(
            EventKind::Ins,
            Atom::ground("la", vec![Const::sym("maria")]),
        )
        .prevent(
            EventKind::Ins,
            Atom::ground("unemp", vec![Const::sym("maria")]),
        );
    let (g, x) = run_both(&db, &req);
    assert_eq!(todo_sets(&g), todo_sets(&x));
    assert_eq!(g.alternatives.len(), 1);
}

#[test]
fn greedy_is_a_sound_subset_on_guarded_updates() {
    // Integrity-maintaining update over 3 persons: exhaustive enumerates
    // compensating combinations (3^n); greedy keeps the minimal one.
    let db = parse_database(
        "la(p0). u_benefit(p0). la(p1). u_benefit(p1). la(p2). u_benefit(p2).
         unemp(X) :- la(X), not works(X).
         :- unemp(X), not u_benefit(X).",
    )
    .unwrap();
    let old = materialize(&db).unwrap();
    let req = Request::new().achieve(
        EventKind::Ins,
        Atom::ground("unemp", vec![Const::sym("fresh")]),
    );
    let proc = UpdateProcessor::new(db.clone()).unwrap();
    let greedy = proc.view_update_with_integrity(&req).unwrap();
    let proc_x = proc.clone().with_options(DownwardOptions {
        exhaustive_negation: true,
        max_alternatives: 200_000,
        ..DownwardOptions::default()
    });
    let exhaustive = proc_x.view_update_with_integrity(&req).unwrap();

    // Greedy to_do sets ⊆ exhaustive to_do sets.
    let g = todo_sets(&greedy);
    let x = todo_sets(&exhaustive);
    assert!(g.is_subset(&x), "greedy {g:?} not within exhaustive");
    assert_eq!(g.len(), 1);
    assert_eq!(x.len(), 27); // 3^3 compensating combinations

    // The greedy alternative is minimal: no exhaustive to_do is a strict
    // subset of it.
    let g0 = g.iter().next().unwrap();
    for alt in &x {
        let subset = alt.iter().all(|e| g0.contains(e));
        assert!(!(subset && alt.len() < g0.len()), "greedy not minimal");
    }
    let _ = old;
}
