//! Verification of the transition rules themselves (§3.2): for every
//! derived predicate `P` and candidate tuple `c̄`, the executable
//! transition rule `Pⁿ(c̄)` — old literals evaluated on the old state,
//! event literals on the transaction plus induced events — holds **iff**
//! `c̄` belongs to the materialized new state. Also: simplification
//! preserves this semantics.
//!
//! Deterministic fuzz loops over the in-tree PRNG (no proptest): fixed
//! seeds, same scenarios every run.

use dduf::core::rng::Rng;
use dduf::core::upward::incremental::new_state_holds;
use dduf::prelude::*;
use dduf_events::simplify::simplify_transition;
use dduf_events::transition::TransitionRule;
use std::fmt::Write as _;

const CONSTS: [&str; 3] = ["a", "b", "c"];
const BASES: [&str; 3] = ["b1", "b2", "b3"];

#[derive(Clone, Debug)]
struct Scenario {
    facts: Vec<Vec<usize>>,
    // one derived layer over bases + optionally a second over the first
    layer1: Vec<(usize, bool)>,
    layer2: Option<Vec<(usize, bool)>>, // preds: 0..3 bases, 3 = v1
    txn: Vec<(bool, usize, usize)>,
}

impl Scenario {
    fn gen(rng: &mut Rng) -> Scenario {
        let facts = (0..BASES.len())
            .map(|_| (0..rng.usize(4)).map(|_| rng.usize(CONSTS.len())).collect())
            .collect();
        let layer1 = (0..1 + rng.usize(3))
            .map(|_| (rng.usize(3), rng.bool()))
            .collect();
        let layer2 = rng.bool().then(|| {
            (0..1 + rng.usize(3))
                .map(|_| (rng.usize(4), rng.bool()))
                .collect()
        });
        let txn = (0..1 + rng.usize(4))
            .map(|_| (rng.bool(), rng.usize(BASES.len()), rng.usize(CONSTS.len())))
            .collect();
        Scenario {
            facts,
            layer1,
            layer2,
            txn,
        }
    }

    fn source(&self) -> String {
        let mut src = String::new();
        for b in BASES {
            let _ = writeln!(src, "#base {b}/1.");
        }
        for (i, cs) in self.facts.iter().enumerate() {
            for &c in cs {
                let _ = writeln!(src, "{}({}).", BASES[i], CONSTS[c]);
            }
        }
        let body1: Vec<String> = self
            .layer1
            .iter()
            .enumerate()
            .map(|(j, &(p, pos))| {
                let name = BASES[p % 3];
                if pos || j == 0 {
                    format!("{name}(X)")
                } else {
                    format!("not {name}(X)")
                }
            })
            .collect();
        let _ = writeln!(src, "v1(X) :- {}.", body1.join(", "));
        if let Some(l2) = &self.layer2 {
            let body2: Vec<String> = l2
                .iter()
                .enumerate()
                .map(|(j, &(p, pos))| {
                    let name = if p >= 3 { "v1" } else { BASES[p] };
                    if pos || j == 0 {
                        format!("{name}(X)")
                    } else {
                        format!("not {name}(X)")
                    }
                })
                .collect();
            let _ = writeln!(src, "v2(X) :- {}.", body2.join(", "));
        }
        src
    }
}

fn build(s: &Scenario) -> (Database, Transaction) {
    let db = parse_database(&s.source()).expect("scenario parses");
    let mut events = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &(ins, p, c) in &s.txn {
        if seen.insert((p, c)) {
            let kind = if ins { EventKind::Ins } else { EventKind::Del };
            events.push(GroundEvent::new(
                kind,
                Pred::new(BASES[p], 1),
                Tuple::new(vec![Const::sym(CONSTS[c])]),
            ));
        }
    }
    let txn = Transaction::from_events(&db, events).expect("valid");
    (db, txn)
}

/// TR(c̄) ⟺ c̄ ∈ Pⁿ, for raw and simplified transition rules.
#[test]
fn transition_rule_matches_new_state() {
    let mut rng = Rng::new(0x7124);
    for case in 0..96 {
        let s = Scenario::gen(&mut rng);
        let (db, txn) = build(&s);
        let old = materialize(&db).unwrap();
        // The upward result supplies the event sets TR literals refer to.
        let up =
            dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Incremental).unwrap();
        let mut all_events = up.base.clone();
        all_events.extend(&up.derived);
        let new = materialize(&txn.apply(&db)).unwrap();

        for (pred, _role) in db.program().predicates() {
            if !db.program().is_derived(pred) {
                continue;
            }
            let raw = TransitionRule::build(db.program(), pred);
            let simplified = simplify_transition(&raw);
            for c in CONSTS {
                let tuple = Tuple::new(vec![Const::sym(c)]);
                let expected = new.relation(pred).contains(&tuple);
                let via_raw = new_state_holds(&raw, &tuple, &db, &old, &all_events);
                let via_simplified = new_state_holds(&simplified, &tuple, &db, &old, &all_events);
                assert_eq!(
                    via_raw, expected,
                    "case {case}: raw TR of {pred} disagrees on {tuple}"
                );
                assert_eq!(
                    via_simplified, expected,
                    "case {case}: simplified TR of {pred} disagrees on {tuple}"
                );
            }
        }
    }
}

/// Top-down resolution agrees with bottom-up materialization on the
/// same randomized (non-recursive) programs.
#[test]
fn topdown_matches_bottom_up() {
    let mut rng = Rng::new(0x70D0);
    for case in 0..96 {
        let s = Scenario::gen(&mut rng);
        let (db, _txn) = build(&s);
        let m = materialize(&db).unwrap();
        let td = dduf::datalog::eval::topdown::TopDown::new(&db).unwrap();
        for (pred, _role) in db.program().predicates() {
            if !db.program().is_derived(pred) {
                continue;
            }
            for c in CONSTS {
                let tuple = Tuple::new(vec![Const::sym(c)]);
                let goal = tuple.to_atom(pred);
                assert_eq!(
                    td.holds(&goal).unwrap(),
                    m.relation(pred).contains(&tuple),
                    "case {case}: top-down disagrees on {goal}"
                );
            }
        }
    }
}
