//! Property-based verification of the transition rules themselves (§3.2):
//! for every derived predicate `P` and candidate tuple `c̄`, the executable
//! transition rule `Pⁿ(c̄)` — old literals evaluated on the old state,
//! event literals on the transaction plus induced events — holds **iff**
//! `c̄` belongs to the materialized new state. Also: simplification
//! preserves this semantics.

use dduf::core::upward::incremental::new_state_holds;
use dduf::prelude::*;
use dduf_events::simplify::simplify_transition;
use dduf_events::transition::TransitionRule;
use proptest::prelude::*;
use std::fmt::Write as _;

const CONSTS: [&str; 3] = ["a", "b", "c"];
const BASES: [&str; 3] = ["b1", "b2", "b3"];

#[derive(Clone, Debug)]
struct Scenario {
    facts: Vec<Vec<usize>>,
    // one derived layer over bases + optionally a second over the first
    layer1: Vec<(usize, bool)>,
    layer2: Option<Vec<(usize, bool)>>, // preds: 0..3 bases, 3 = v1
    txn: Vec<(bool, usize, usize)>,
}

impl Scenario {
    fn source(&self) -> String {
        let mut src = String::new();
        for b in BASES {
            let _ = writeln!(src, "#base {b}/1.");
        }
        for (i, cs) in self.facts.iter().enumerate() {
            for &c in cs {
                let _ = writeln!(src, "{}({}).", BASES[i], CONSTS[c]);
            }
        }
        let body1: Vec<String> = self
            .layer1
            .iter()
            .enumerate()
            .map(|(j, &(p, pos))| {
                let name = BASES[p % 3];
                if pos || j == 0 {
                    format!("{name}(X)")
                } else {
                    format!("not {name}(X)")
                }
            })
            .collect();
        let _ = writeln!(src, "v1(X) :- {}.", body1.join(", "));
        if let Some(l2) = &self.layer2 {
            let body2: Vec<String> = l2
                .iter()
                .enumerate()
                .map(|(j, &(p, pos))| {
                    let name = if p >= 3 { "v1" } else { BASES[p] };
                    if pos || j == 0 {
                        format!("{name}(X)")
                    } else {
                        format!("not {name}(X)")
                    }
                })
                .collect();
            let _ = writeln!(src, "v2(X) :- {}.", body2.join(", "));
        }
        src
    }
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let facts = proptest::collection::vec(
        proptest::collection::vec(0..CONSTS.len(), 0..4),
        BASES.len(),
    );
    let lit = (0..4usize, proptest::bool::ANY);
    let layer1 = proptest::collection::vec((0..3usize, proptest::bool::ANY), 1..4);
    let layer2 = proptest::option::of(proptest::collection::vec(lit, 1..4));
    let txn = proptest::collection::vec(
        (proptest::bool::ANY, 0..BASES.len(), 0..CONSTS.len()),
        1..5,
    );
    (facts, layer1, layer2, txn).prop_map(|(facts, layer1, layer2, txn)| Scenario {
        facts,
        layer1,
        layer2,
        txn,
    })
}

fn build(s: &Scenario) -> (Database, Transaction) {
    let db = parse_database(&s.source()).expect("scenario parses");
    let mut events = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &(ins, p, c) in &s.txn {
        if seen.insert((p, c)) {
            let kind = if ins { EventKind::Ins } else { EventKind::Del };
            events.push(GroundEvent::new(
                kind,
                Pred::new(BASES[p], 1),
                Tuple::new(vec![Const::sym(CONSTS[c])]),
            ));
        }
    }
    let txn = Transaction::from_events(&db, events).expect("valid");
    (db, txn)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// TR(c̄) ⟺ c̄ ∈ Pⁿ, for raw and simplified transition rules.
    #[test]
    fn transition_rule_matches_new_state(s in scenario()) {
        let (db, txn) = build(&s);
        let old = materialize(&db).unwrap();
        // The upward result supplies the event sets TR literals refer to.
        let up = dduf::core::upward::interpret_with(
            &db, &old, &txn, UpwardEngine::Incremental,
        ).unwrap();
        let mut all_events = up.base.clone();
        all_events.extend(&up.derived);
        let new = materialize(&txn.apply(&db)).unwrap();

        for (pred, _role) in db.program().predicates() {
            if !db.program().is_derived(pred) {
                continue;
            }
            let raw = TransitionRule::build(db.program(), pred);
            let simplified = simplify_transition(&raw);
            for c in CONSTS {
                let tuple = Tuple::new(vec![Const::sym(c)]);
                let expected = new.relation(pred).contains(&tuple);
                let via_raw = new_state_holds(&raw, &tuple, &db, &old, &all_events);
                let via_simplified =
                    new_state_holds(&simplified, &tuple, &db, &old, &all_events);
                prop_assert_eq!(
                    via_raw, expected,
                    "raw TR of {} disagrees on {}", pred, tuple
                );
                prop_assert_eq!(
                    via_simplified, expected,
                    "simplified TR of {} disagrees on {}", pred, tuple
                );
            }
        }
    }

    /// Top-down resolution agrees with bottom-up materialization on the
    /// same randomized (non-recursive) programs.
    #[test]
    fn topdown_matches_bottom_up(s in scenario()) {
        let (db, _txn) = build(&s);
        let m = materialize(&db).unwrap();
        let td = dduf::datalog::eval::topdown::TopDown::new(&db).unwrap();
        for (pred, _role) in db.program().predicates() {
            if !db.program().is_derived(pred) {
                continue;
            }
            for c in CONSTS {
                let tuple = Tuple::new(vec![Const::sym(c)]);
                let goal = tuple.to_atom(pred);
                prop_assert_eq!(
                    td.holds(&goal).unwrap(),
                    m.relation(pred).contains(&tuple),
                    "top-down disagrees on {}", goal
                );
            }
        }
    }
}
