//! End-to-end tests for the `dduf lint` subcommand: exit codes, text
//! rendering, and the JSON report shape.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("dduf-lint-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp program");
    path
}

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dduf"))
        .arg("lint")
        .args(args)
        .output()
        .expect("run dduf lint")
}

const BROKEN: &str = "\
#base works/1.
works(X) :- not emp(Z), la(X).
v(X) :- la(X), q(W).
";

const CLEAN: &str = "\
la(ana). la(ben). works(ben).
unemp(X) :- la(X), not works(X).
:- unemp(X), not la(X).
";

const WARN_ONLY: &str = "v(X) :- la(X), q(W).\n";

#[test]
fn broken_program_reports_multiple_diagnostics_in_one_run() {
    let path = write_temp("broken.dl", BROKEN);
    let out = lint(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    // One invocation surfaces at least two distinct codes with spans.
    assert!(text.contains("error[E001]"), "{text}");
    assert!(text.contains("error[E003]"), "{text}");
    assert!(text.contains("warning[W001]"), "{text}");
    assert!(text.contains("-->"), "{text}");
    assert!(text.contains('^'), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn clean_program_exits_zero() {
    let path = write_temp("clean.dl", CLEAN);
    let out = lint(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("no diagnostics"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn deny_warnings_turns_warnings_fatal() {
    let path = write_temp("warn.dl", WARN_ONLY);
    let p = path.to_str().unwrap();
    assert_eq!(lint(&[p]).status.code(), Some(0));
    assert_eq!(lint(&["--deny-warnings", p]).status.code(), Some(1));
    let _ = std::fs::remove_file(path);
}

#[test]
fn json_format_has_expected_shape() {
    let path = write_temp("json.dl", BROKEN);
    let out = lint(&["--format=json", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("\"file\":"), "{json}");
    assert!(json.contains("\"diagnostics\":["), "{json}");
    assert!(json.contains("\"code\":\"E001\""), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
    assert!(json.contains("\"spans\":["), "{json}");
    assert!(json.contains("\"line\":"), "{json}");
    assert!(json.contains("\"errors\":"), "{json}");
    assert!(json.contains("\"warnings\":"), "{json}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn syntax_error_is_e000() {
    let path = write_temp("syntax.dl", "p(a)\nq(b).\n");
    let out = lint(&["--format=json", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"code\":\"E000\""), "{json}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn usage_errors_exit_two() {
    let no_file = lint(&[]);
    assert_eq!(no_file.status.code(), Some(2), "{no_file:?}");
    let bad_flag = lint(&["--bogus", "x.dl"]);
    assert_eq!(bad_flag.status.code(), Some(2), "{bad_flag:?}");
    let missing = lint(&["/nonexistent/definitely-missing.dl"]);
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");
}
