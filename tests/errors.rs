//! Error-path integration tests: the typed failures the framework promises
//! (unstratifiable programs, unsafe rules, invalid transactions, recursive
//! downward requests, search limits).

use dduf::core::Error as CoreError;
use dduf::datalog::error::{Error as DlError, SchemaError};
use dduf::prelude::*;

#[test]
fn unstratifiable_program_rejected_at_materialization() {
    let db = parse_database("p(X) :- b(X), not q(X). q(X) :- b(X), p(X). b(a).").unwrap();
    let err = materialize(&db).unwrap_err();
    assert!(matches!(
        err,
        DlError::Schema(SchemaError::NotStratifiable(_))
    ));
}

#[test]
fn unsafe_rule_rejected() {
    let db = parse_database("p(X) :- not q(X).").unwrap();
    let err = materialize(&db).unwrap_err();
    assert!(matches!(
        err,
        DlError::Schema(SchemaError::NotAllowed { .. })
    ));
}

#[test]
fn parse_errors_have_positions() {
    let err = parse_database("p(a)\nq(b).").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("2:1"), "{msg}");
}

#[test]
fn transaction_on_derived_predicate_rejected() {
    let db = parse_database("q(a). p(X) :- q(X).").unwrap();
    let err = Transaction::parse(&db, "+p(b).").unwrap_err();
    assert!(matches!(err, CoreError::DerivedEventInTransaction(_)));
    assert!(err.to_string().contains("base fact updates"));
}

#[test]
fn conflicting_transaction_rejected() {
    let db = parse_database("q(a). p(X) :- q(X).").unwrap();
    let err = Transaction::parse(&db, "+q(b). -q(b).").unwrap_err();
    assert!(matches!(err, CoreError::ConflictingEvents { .. }));
}

#[test]
fn recursive_downward_reports_predicate() {
    let db =
        parse_database("e(a, b). tc(X, Y) :- e(X, Y). tc(X, Y) :- e(X, Z), tc(Z, Y).").unwrap();
    let req = Request::new().achieve(
        EventKind::Ins,
        Atom::ground("tc", vec![Const::sym("a"), Const::sym("c")]),
    );
    let err = dduf::core::downward::interpret(&db, &req, &DownwardOptions::default()).unwrap_err();
    match err {
        CoreError::RecursiveDownward(p) => assert_eq!(p, Pred::new("tc", 2)),
        other => panic!("expected RecursiveDownward, got {other:?}"),
    }
}

#[test]
fn grounding_limit_enforced() {
    // 26 constants, event with 2 unbound vars = 676 groundings > limit 100.
    let mut src = String::from("link(X, Y) :- node(X), node(Y), not blocked(X, Y).\n");
    for i in 0..26 {
        src.push_str(&format!("node(n{i}).\n"));
    }
    let db = parse_database(&src).unwrap();
    let req = Request::new().achieve(
        EventKind::Ins,
        Atom::new("link", vec![Term::var("A"), Term::var("B")]),
    );
    let opts = DownwardOptions {
        max_groundings: 100,
        ..DownwardOptions::default()
    };
    let err = dduf::core::downward::interpret(&db, &req, &opts).unwrap_err();
    assert!(matches!(
        err,
        CoreError::LimitExceeded {
            what: "groundings",
            ..
        }
    ));
}

#[test]
fn alternatives_limit_enforced() {
    // Prevent-everything over a wide disjunction explodes; the cap fires.
    let mut src = String::from("v(X) :- b(X), not r(X).\n");
    for i in 0..30 {
        src.push_str(&format!("b(k{i}).\n"));
    }
    let db = parse_database(&src).unwrap();
    let req = Request::new().prevent(EventKind::Del, Atom::new("v", vec![Term::var("X")]));
    let opts = DownwardOptions {
        max_alternatives: 50,
        ..DownwardOptions::default()
    };
    let result = dduf::core::downward::interpret(&db, &req, &opts);
    match result {
        Err(CoreError::LimitExceeded { .. }) => {}
        Ok(res) => {
            // Acceptable alternative outcome: the requirement collapses to
            // few alternatives after pruning; it must then be small.
            assert!(res.alternatives.len() <= 50);
        }
        Err(other) => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn empty_domain_reported() {
    // A database with no constants anywhere and an open request.
    let db = parse_database("#base b/1.\nv(X) :- b(X).").unwrap();
    let req = Request::new().achieve(EventKind::Ins, Atom::new("v", vec![Term::var("X")]));
    let err = dduf::core::downward::interpret(&db, &req, &DownwardOptions::default()).unwrap_err();
    assert!(matches!(err, CoreError::EmptyDomain));
}

#[test]
fn fact_on_derived_predicate_rejected_by_loader() {
    let err = parse_database("p(X) :- q(X). p(a).").unwrap_err();
    assert!(matches!(
        err,
        DlError::Schema(SchemaError::FactOnDerivedPredicate(_))
    ));
}
