//! Long-horizon soak test: drive one database through hundreds of
//! randomized steps mixing every problem of the catalog, checking the
//! global invariants after each step:
//!
//! * the processor's interpretation always equals a from-scratch
//!   materialization;
//! * committed transactions never leave the database inconsistent when
//!   integrity checking accepted them;
//! * the materialized view store equals the current view extensions;
//! * every downward alternative offered verifies by upward replay.

use dduf::core::rng::Rng;
use dduf::prelude::*;

const PEOPLE: [&str; 6] = ["ana", "ben", "cara", "dan", "eva", "finn"];

fn db() -> Database {
    parse_database(
        "#cond needy/1.
         la(ana). u_benefit(ana). la(ben). works(ben).
         unemp(X) :- la(X), not works(X).
         covered(X) :- works(X).
         covered(X) :- u_benefit(X).
         needy(X) :- la(X), not covered(X).
         :- unemp(X), not u_benefit(X).",
    )
    .unwrap()
}

#[test]
fn soak_300_steps() {
    let mut rng = Rng::new(20260705);
    let mut proc = UpdateProcessor::new(db()).unwrap();
    let mut store =
        MaterializedViewStore::materialize(proc.database().program(), proc.interpretation());
    let base_preds = ["la", "works", "u_benefit"];
    let mut commits = 0usize;
    let mut rejects = 0usize;
    let mut downwards = 0usize;

    for step in 0..300 {
        match rng.usize(10) {
            // 0..6: random base transaction through check-then-commit
            0..=5 => {
                let k = 1 + rng.usize(3);
                let mut events = Vec::new();
                let mut seen = std::collections::BTreeSet::new();
                for _ in 0..k {
                    let pred = *rng.choose(&base_preds);
                    let person = *rng.choose(&PEOPLE);
                    if !seen.insert((pred, person)) {
                        continue;
                    }
                    let p = Pred::new(pred, 1);
                    let t = Tuple::new(vec![Const::sym(person)]);
                    let kind = if proc.database().holds(p, &t) {
                        EventKind::Del
                    } else {
                        EventKind::Ins
                    };
                    events.push(GroundEvent::new(kind, p, t));
                }
                let txn = Transaction::from_events(proc.database(), events).unwrap();
                if proc.check_integrity(&txn).unwrap().accepts() {
                    proc.maintain_views(&txn, &mut store).unwrap();
                    proc.commit(&txn).unwrap();
                    commits += 1;
                } else {
                    rejects += 1;
                }
            }
            // 6..8: view update via downward, commit first alternative
            6 | 7 => {
                let person = *rng.choose(&PEOPLE);
                let kind = if rng.bool() {
                    EventKind::Ins
                } else {
                    EventKind::Del
                };
                let req =
                    Request::new().achieve(kind, Atom::ground("unemp", vec![Const::sym(person)]));
                let res = proc.view_update_with_integrity(&req).unwrap();
                downwards += 1;
                for alt in res.alternatives.iter().take(3) {
                    assert!(
                        dduf::core::downward::verify(
                            proc.database(),
                            proc.interpretation(),
                            &req,
                            alt
                        )
                        .unwrap(),
                        "step {step}: unsound alternative {alt}"
                    );
                }
                if let Some(alt) = res.alternatives.first() {
                    let txn = alt.to_transaction(proc.database()).unwrap();
                    proc.maintain_views(&txn, &mut store).unwrap();
                    proc.commit(&txn).unwrap();
                    commits += 1;
                }
            }
            // 8: monitoring (read-only)
            8 => {
                let person = *rng.choose(&PEOPLE);
                let txn = proc.transaction(&format!("+la({person}).")).unwrap();
                let _ = proc.monitor_conditions(&txn).unwrap();
            }
            // 9: repair if ever inconsistent (should not happen)
            _ => {
                use dduf::core::problems::repair::RepairOutcome;
                match proc.repairs().unwrap() {
                    RepairOutcome::AlreadyConsistent | RepairOutcome::NoConstraints => {}
                    RepairOutcome::Repairs(_) => {
                        panic!("step {step}: database became inconsistent despite checking")
                    }
                }
            }
        }

        // Invariants after every step.
        let fresh = materialize(proc.database()).unwrap();
        assert_eq!(
            proc.interpretation(),
            &fresh,
            "step {step}: stale interpretation"
        );
        assert!(
            store.consistent_with(proc.interpretation()),
            "step {step}: materialized store diverged"
        );
        if let Some(ic) = proc.database().program().global_ic() {
            assert!(
                fresh.relation(ic).is_empty(),
                "step {step}: inconsistent state committed"
            );
        }
    }

    // The workload must have actually exercised the machinery.
    assert!(commits > 50, "only {commits} commits");
    assert!(downwards > 10, "only {downwards} downward runs");
    let _ = rejects;
}

/// Durable soak: drive a journaled database through random commits and
/// periodic checkpoints, then check that the persistence trace counters
/// agree with the on-disk ground truth — `journal.append` bytes sum to
/// exactly the journal growth, the journal end is strictly monotone, the
/// snapshot writer ran once per checkpoint (plus init) — and that two
/// captured recoveries are bit-identical to each other and to the
/// pre-crash state.
#[test]
fn durable_soak_journal_metrics_and_recovery() {
    const SCHEMA: &str = "#cond needy/1.
         la(ana). u_benefit(ana). la(ben). works(ben).
         unemp(X) :- la(X), not works(X).
         covered(X) :- works(X).
         covered(X) :- u_benefit(X).
         needy(X) :- la(X), not covered(X).
         :- unemp(X), not u_benefit(X).";
    let dir = std::env::temp_dir().join(format!("dduf_soak_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base_preds = ["la", "works", "u_benefit"];
    let mut rng = Rng::new(20260807);

    let ((commits, checkpoints, final_end, saved), report) = dduf::obs::capture(|| {
        let mut db = DurableDb::init(&dir, SCHEMA).unwrap();
        let mut prev_end = db.store().journal_end();
        let mut commits = 0u64;
        let mut checkpoints = 0u64;
        for step in 0..60 {
            let pred = *rng.choose(&base_preds);
            let person = *rng.choose(&PEOPLE);
            let p = Pred::new(pred, 1);
            let t = Tuple::new(vec![Const::sym(person)]);
            let sign = if db.processor().database().holds(p, &t) {
                '-'
            } else {
                '+'
            };
            let txn = db.transaction(&format!("{sign}{pred}({person}).")).unwrap();
            db.commit(&txn).unwrap();
            commits += 1;
            let end = db.store().journal_end();
            assert!(
                end > prev_end,
                "step {step}: journal end {end} did not advance past {prev_end}"
            );
            prev_end = end;
            if step % 20 == 19 {
                db.checkpoint().unwrap();
                checkpoints += 1;
            }
        }
        let saved = dduf::datalog::pretty::database(db.processor().database());
        (commits, checkpoints, prev_end, saved)
    });

    // Counters vs ground truth: every commit appended one fsynced record,
    // and the bytes recorded are exactly the journal growth past the
    // 8-byte magic header.
    assert_eq!(report.counter("journal.append", "", "appends"), commits);
    assert_eq!(report.counter("journal.append", "", "fsyncs"), commits);
    assert_eq!(report.counter("journal.append", "", "bytes"), final_end - 8);
    assert_eq!(
        report.counter("snapshot.write", "", "writes"),
        checkpoints + 1,
        "one snapshot per checkpoint plus the one init writes"
    );

    // Two captured recoveries (sequential — the directory lock forbids
    // concurrent openers): identical trace fingerprints, identical
    // recovery records, and a state equal to what was committed.
    let (first, rep1) = dduf::obs::capture(|| DurableDb::open(&dir).unwrap());
    let first_recovery = first.recovery();
    let first_saved = dduf::datalog::pretty::database(first.processor().database());
    drop(first); // release dduf.lock for the second open
    let (second, rep2) = dduf::obs::capture(|| DurableDb::open(&dir).unwrap());
    assert_eq!(rep1.semantic_fingerprint(), rep2.semantic_fingerprint());
    assert_eq!(first_recovery, second.recovery());
    assert_eq!(
        rep1.counter("recovery.open", "", "replayed"),
        first_recovery.replayed as u64
    );
    assert_eq!(rep1.counter("recovery.open", "", "truncated_bytes"), 0);
    assert_eq!(rep1.counter("journal.scan", "", "records"), commits);
    assert_eq!(rep1.counter("journal.scan", "", "bytes"), final_end - 8);
    assert_eq!(
        first_saved, saved,
        "recovered state differs from the committed one"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
