//! Differential testing: the incremental upward engine must agree with
//! the semantic (state-diff) oracle on random stratified programs and
//! random transactions — the central correctness property of the upward
//! interpretation (the semantic engine *is* the event definitions
//! (1)/(2) of §3.1).
//!
//! Uses deterministic fuzz loops over the in-tree PRNG instead of
//! proptest so the suite builds offline; seeds are fixed, so every run
//! explores the same program/transaction pairs.

use dduf::core::rng::Rng;
use dduf::prelude::*;
use std::fmt::Write as _;

const CONSTS: [&str; 4] = ["a", "b", "c", "d"];
const BASES: [&str; 3] = ["b1", "b2", "b3"];

#[derive(Clone, Debug)]
struct RandLit {
    pred: usize, // index: 0..3 base, 3.. derived of lower layer
    positive: bool,
}

#[derive(Clone, Debug)]
struct RandProgram {
    /// facts[i] = set of constants for base predicate i.
    facts: Vec<Vec<usize>>,
    /// layers[k] = body literals of derived predicate v{k+1}; references
    /// base preds (0..3) and derived preds of strictly lower layers
    /// (3 + j for layer j).
    layers: Vec<Vec<RandLit>>,
}

impl RandProgram {
    fn gen(rng: &mut Rng) -> RandProgram {
        let facts = (0..BASES.len())
            .map(|_| (0..rng.usize(5)).map(|_| rng.usize(CONSTS.len())).collect())
            .collect();
        let depth = 1 + rng.usize(3);
        let layers = (0..depth)
            .map(|layer| {
                (0..1 + rng.usize(3))
                    .map(|_| RandLit {
                        pred: rng.usize(3 + layer),
                        positive: rng.bool(),
                    })
                    .collect()
            })
            .collect();
        RandProgram { facts, layers }
    }

    fn to_source(&self) -> String {
        let mut src = String::new();
        for (i, cs) in self.facts.iter().enumerate() {
            for &c in cs {
                let _ = writeln!(src, "{}({}).", BASES[i], CONSTS[c]);
            }
        }
        // Declare base preds so empty relations still typecheck.
        for b in BASES {
            let _ = writeln!(src, "#base {b}/1.");
        }
        for (k, body) in self.layers.iter().enumerate() {
            let name = format!("v{}", k + 1);
            let mut lits: Vec<String> = Vec::new();
            // Guarantee allowedness: ensure at least one positive literal
            // by forcing the first literal positive.
            for (j, lit) in body.iter().enumerate() {
                let pname = if lit.pred < 3 {
                    BASES[lit.pred].to_string()
                } else {
                    format!("v{}", lit.pred - 2) // lower layer: 3 -> v1, 4 -> v2
                };
                let positive = lit.positive || j == 0;
                lits.push(if positive {
                    format!("{pname}(X)")
                } else {
                    format!("not {pname}(X)")
                });
            }
            let _ = writeln!(src, "{name}(X) :- {}.", lits.join(", "));
        }
        src
    }
}

/// Random transaction: deduplicated base-event toggles.
fn gen_txn(rng: &mut Rng, db: &Database) -> Transaction {
    let n = 1 + rng.usize(5);
    let mut events = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..n {
        let p = rng.usize(BASES.len());
        let c = rng.usize(CONSTS.len());
        if seen.insert((p, c)) {
            let kind = if rng.bool() {
                EventKind::Ins
            } else {
                EventKind::Del
            };
            events.push(GroundEvent::new(
                kind,
                Pred::new(BASES[p], 1),
                Tuple::new(vec![Const::sym(CONSTS[c])]),
            ));
        }
    }
    Transaction::from_events(db, events).expect("validated")
}

/// Engine B (incremental) ≡ engine A (semantic diff) on random
/// stratified programs and transactions.
#[test]
fn incremental_equals_semantic() {
    let mut rng = Rng::new(0xE9E1);
    for case in 0..128 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("generated program parses");
        let old = materialize(&db).expect("stratified");
        let txn = gen_txn(&mut rng, &db);
        let a = dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Semantic)
            .expect("semantic");
        let b = dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Incremental)
            .expect("incremental");
        assert_eq!(a, b, "case {case}: {}", prog.to_source());
    }
}

/// The upward result matches the definitional diff: applying the
/// transaction and rematerializing yields exactly old ± events.
#[test]
fn events_reconstruct_new_state() {
    let mut rng = Rng::new(0x5EED2);
    for case in 0..128 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("parses");
        let old = materialize(&db).expect("stratified");
        let txn = gen_txn(&mut rng, &db);
        let res = dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Incremental)
            .expect("incremental");
        let new = materialize(&txn.apply(&db)).expect("new state");
        for (pred, _role) in db.program().predicates() {
            if !db.program().is_derived(pred) {
                continue;
            }
            let expected = new.relation(pred);
            let reconstructed = old
                .relation(pred)
                .difference(res.derived.relation(EventKind::Del, pred))
                .union(res.derived.relation(EventKind::Ins, pred));
            assert_eq!(expected, &reconstructed, "case {case}: mismatch on {pred}");
        }
    }
}

/// Determinism across worker counts: naive, semi-naive, and the
/// parallel evaluator at threads ∈ {1, 2, 8} all produce bit-identical
/// materializations, over the embedded example databases and random
/// stratified programs alike.
#[test]
fn parallel_materialization_matches_sequential_across_thread_counts() {
    use dduf::datalog::eval::{materialize_with_threads, Strategy};
    use dduf::datalog::pretty;

    let mut dbs: Vec<(String, Database)> = vec![
        (
            "employment".into(),
            dduf::core::testkit::employment_db_with_condition(),
        ),
        ("chain_tc".into(), dduf::core::testkit::chain_tc_db(60)),
        ("wide".into(), dduf::core::testkit::wide_db(100)),
    ];
    let mut rng = Rng::new(0x7A11E1);
    for case in 0..32 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("generated program parses");
        dbs.push((format!("rand#{case}"), db));
    }

    for (name, db) in &dbs {
        let baseline = pretty::derived(&materialize(db).expect("stratified"));
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            for threads in [1usize, 2, 8] {
                let got = pretty::derived(
                    &materialize_with_threads(db, strategy, threads).expect("stratified"),
                );
                assert_eq!(
                    baseline, got,
                    "{name}: {strategy:?} at {threads} threads diverges"
                );
            }
        }
    }
}

/// The upward engines stay equivalent — to each other and to their own
/// sequential run — at every worker count.
#[test]
fn parallel_upward_matches_sequential_across_thread_counts() {
    let mut rng = Rng::new(0x7A11E2);
    for case in 0..48 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("parses");
        let old = materialize(&db).expect("stratified");
        let txn = gen_txn(&mut rng, &db);
        let expected = dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Semantic)
            .expect("semantic");
        for engine in [UpwardEngine::Semantic, UpwardEngine::Incremental] {
            for threads in [1usize, 2, 8] {
                let got =
                    dduf::core::upward::interpret_with_threads(&db, &old, &txn, engine, threads)
                        .expect("parallel upward");
                assert_eq!(
                    expected,
                    got,
                    "case {case}: {engine:?} at {threads} threads diverges\n{}",
                    prog.to_source()
                );
            }
        }
    }
}

/// The trace counters are part of the determinism contract too: the
/// semantic fingerprint (every counter the recorder marks deterministic,
/// wall-times excluded) is bit-identical across worker counts, for both
/// evaluation strategies, over embedded and random programs.
#[test]
fn trace_counters_identical_across_thread_counts() {
    use dduf::datalog::eval::{materialize_with_threads, Strategy};

    let mut dbs: Vec<(String, Database)> = vec![
        (
            "employment".into(),
            dduf::core::testkit::employment_db_with_condition(),
        ),
        ("chain_tc".into(), dduf::core::testkit::chain_tc_db(40)),
    ];
    let mut rng = Rng::new(0x0B5E01);
    for case in 0..16 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("generated program parses");
        dbs.push((format!("rand#{case}"), db));
    }

    // Hold the planning lock: fingerprints include planner counters, so
    // a concurrent test toggling the planner would skew them.
    dduf::datalog::eval::plan::with_planning(true, || {
        for (name, db) in &dbs {
            for strategy in [Strategy::Naive, Strategy::SemiNaive] {
                let (_, baseline) = dduf::obs::capture(|| {
                    materialize_with_threads(db, strategy, 1).expect("stratified")
                });
                assert!(!baseline.is_empty(), "{name}: no spans recorded");
                for threads in [2usize, 8] {
                    let (_, got) = dduf::obs::capture(|| {
                        materialize_with_threads(db, strategy, threads).expect("stratified")
                    });
                    assert_eq!(
                        baseline.semantic_fingerprint(),
                        got.semantic_fingerprint(),
                        "{name}: {strategy:?} trace diverges at {threads} threads"
                    );
                }
            }
        }
    });
}

/// Same contract for the upward engines: each engine's counter
/// fingerprint is identical at 1, 2, and 8 workers on random
/// program/transaction pairs.
#[test]
fn upward_trace_counters_identical_across_thread_counts() {
    let mut rng = Rng::new(0x0B5E02);
    for case in 0..24 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("parses");
        let old = materialize(&db).expect("stratified");
        let txn = gen_txn(&mut rng, &db);
        dduf::datalog::eval::plan::with_planning(true, || {
            for engine in [UpwardEngine::Semantic, UpwardEngine::Incremental] {
                let (_, baseline) = dduf::obs::capture(|| {
                    dduf::core::upward::interpret_with_threads(&db, &old, &txn, engine, 1)
                        .expect("upward")
                });
                assert!(!baseline.is_empty(), "case {case}: no spans recorded");
                for threads in [2usize, 8] {
                    let (_, got) = dduf::obs::capture(|| {
                        dduf::core::upward::interpret_with_threads(&db, &old, &txn, engine, threads)
                            .expect("upward")
                    });
                    assert_eq!(
                        baseline.semantic_fingerprint(),
                        got.semantic_fingerprint(),
                        "case {case}: {engine:?} trace diverges at {threads} threads\n{}",
                        prog.to_source()
                    );
                }
            }
        });
    }
}

/// The join planner is a pure optimization: compiled plans must produce
/// bit-identical materializations to the greedy (unplanned) pipeline on
/// embedded and random programs, for both strategies, at every worker
/// count. `with_planning` serializes the toggle so concurrent tests in
/// this binary never observe a half-flipped planner.
#[test]
fn planned_matches_unplanned_materialization() {
    use dduf::datalog::eval::{materialize_with_threads, plan, Strategy};
    use dduf::datalog::pretty;

    let mut dbs: Vec<(String, Database)> = vec![
        (
            "employment".into(),
            dduf::core::testkit::employment_db_with_condition(),
        ),
        ("chain_tc".into(), dduf::core::testkit::chain_tc_db(50)),
        ("wide".into(), dduf::core::testkit::wide_db(80)),
    ];
    let mut rng = Rng::new(0x914A);
    for case in 0..24 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("generated program parses");
        dbs.push((format!("rand#{case}"), db));
    }

    for (name, db) in &dbs {
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            for threads in [1usize, 2, 8] {
                let unplanned = plan::with_planning(false, || {
                    pretty::derived(
                        &materialize_with_threads(db, strategy, threads).expect("stratified"),
                    )
                });
                let planned = plan::with_planning(true, || {
                    pretty::derived(
                        &materialize_with_threads(db, strategy, threads).expect("stratified"),
                    )
                });
                assert_eq!(
                    unplanned, planned,
                    "{name}: {strategy:?} at {threads} threads: planner changed the model"
                );
            }
        }
    }
}

/// Same oracle sweep for the upward engines: planned and unplanned runs
/// of both engines agree on every induced event set, and the planned
/// run's trace fingerprint is itself thread-count invariant.
#[test]
fn planned_matches_unplanned_upward() {
    use dduf::datalog::eval::plan;

    let mut rng = Rng::new(0x914B);
    for case in 0..32 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("parses");
        let old = materialize(&db).expect("stratified");
        let txn = gen_txn(&mut rng, &db);
        for engine in [UpwardEngine::Semantic, UpwardEngine::Incremental] {
            for threads in [1usize, 2, 8] {
                let unplanned = plan::with_planning(false, || {
                    dduf::core::upward::interpret_with_threads(&db, &old, &txn, engine, threads)
                        .expect("upward")
                });
                let planned = plan::with_planning(true, || {
                    dduf::core::upward::interpret_with_threads(&db, &old, &txn, engine, threads)
                        .expect("upward")
                });
                assert_eq!(
                    unplanned,
                    planned,
                    "case {case}: {engine:?} at {threads} threads: planner changed the events\n{}",
                    prog.to_source()
                );
            }
        }
    }
}

/// Planned trace fingerprints are thread-count invariant even though
/// planned evaluation enumerates bindings in plan order: the planner's
/// counters (`plan.compiled`, `index.composite_built`, probe splits)
/// depend only on the program and static binding patterns.
#[test]
fn planned_trace_fingerprints_invariant_across_thread_counts() {
    use dduf::datalog::eval::plan;

    let mut rng = Rng::new(0x914C);
    for case in 0..12 {
        let prog = RandProgram::gen(&mut rng);
        let db = parse_database(&prog.to_source()).expect("parses");
        let old = materialize(&db).expect("stratified");
        let txn = gen_txn(&mut rng, &db);
        plan::with_planning(true, || {
            for engine in [UpwardEngine::Semantic, UpwardEngine::Incremental] {
                let (_, baseline) = dduf::obs::capture(|| {
                    dduf::core::upward::interpret_with_threads(&db, &old, &txn, engine, 1)
                        .expect("upward")
                });
                for threads in [2usize, 8] {
                    let (_, got) = dduf::obs::capture(|| {
                        dduf::core::upward::interpret_with_threads(&db, &old, &txn, engine, threads)
                            .expect("upward")
                    });
                    assert_eq!(
                        baseline.semantic_fingerprint(),
                        got.semantic_fingerprint(),
                        "case {case}: {engine:?} planned trace diverges at {threads} threads"
                    );
                }
            }
        });
    }
}

const NODES: [&str; 5] = ["n0", "n1", "n2", "n3", "n4"];

/// Random *recursive* program: a random edge relation, a recursive SCC
/// over it (plain transitive closure or a mutually recursive pair with
/// stratified negation), and counting-maintained layers above the
/// recursion — the shape that forces the maintenance engine to mix both
/// strategies in one program.
#[derive(Clone, Debug)]
struct RecProgram {
    mutual: bool,
    edges: Vec<(usize, usize)>,
    marks: Vec<usize>,
}

impl RecProgram {
    fn gen(rng: &mut Rng) -> RecProgram {
        RecProgram {
            mutual: rng.bool(),
            edges: (0..3 + rng.usize(8))
                .map(|_| (rng.usize(NODES.len()), rng.usize(NODES.len())))
                .collect(),
            marks: (0..rng.usize(4)).map(|_| rng.usize(NODES.len())).collect(),
        }
    }

    /// Head predicate of the recursive SCC.
    fn scc_head(&self) -> &'static str {
        if self.mutual {
            "p"
        } else {
            "tc"
        }
    }

    fn to_source(&self) -> String {
        let mut src = String::from("#base e/2.\n#base m/1.\n");
        for &(a, b) in &self.edges {
            let _ = writeln!(src, "e({}, {}).", NODES[a], NODES[b]);
        }
        for &a in &self.marks {
            let _ = writeln!(src, "m({}).", NODES[a]);
        }
        if self.mutual {
            src.push_str("p(X, Y) :- e(X, Y).\n");
            src.push_str("p(X, Y) :- e(X, Z), q(Z, Y).\n");
            src.push_str("q(X, Y) :- p(X, Y), not m(X).\n");
        } else {
            src.push_str("tc(X, Y) :- e(X, Y).\n");
            src.push_str("tc(X, Y) :- e(X, Z), tc(Z, Y).\n");
        }
        let h = self.scc_head();
        let _ = writeln!(src, "cyc(X) :- {h}(X, X).");
        src.push_str("lone(X) :- m(X), not cyc(X).\n");
        src
    }
}

/// Random deletion-heavy transaction: ~70% of events delete a currently
/// *live* base fact (so deletions actually tear derivations down), the
/// rest insert random edges and marks.
fn gen_churn_txn(rng: &mut Rng, db: &Database) -> Transaction {
    let e = Pred::new("e", 2);
    let m = Pred::new("m", 1);
    let mut events = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..2 + rng.usize(5) {
        let (kind, pred, tuple) = if rng.usize(10) < 7 {
            // Delete a live fact (falling back to an insert when the
            // chosen relation is empty).
            let pred = if rng.bool() { e } else { m };
            let live: Vec<Tuple> = db.relation(pred).iter().cloned().collect();
            match live.get(rng.usize(live.len().max(1))) {
                Some(t) => (EventKind::Del, pred, t.clone()),
                None => (
                    EventKind::Ins,
                    e,
                    Tuple::new(vec![
                        Const::sym(NODES[rng.usize(NODES.len())]),
                        Const::sym(NODES[rng.usize(NODES.len())]),
                    ]),
                ),
            }
        } else if rng.bool() {
            (
                EventKind::Ins,
                e,
                Tuple::new(vec![
                    Const::sym(NODES[rng.usize(NODES.len())]),
                    Const::sym(NODES[rng.usize(NODES.len())]),
                ]),
            )
        } else {
            (
                EventKind::Ins,
                m,
                Tuple::new(vec![Const::sym(NODES[rng.usize(NODES.len())])]),
            )
        };
        if seen.insert((pred, tuple.clone())) {
            events.push(GroundEvent::new(kind, pred, tuple));
        }
    }
    Transaction::from_events(db, events).expect("validated")
}

/// Deletion-heavy random streams over recursive programs: the stateful
/// maintenance engine (counting strata + DRed SCCs, selected
/// automatically) must agree with the semantic oracle — run at 1, 2,
/// and 8 worker threads — on every induced event set, and its carried
/// extensions must equal a full recompute after every step.
#[test]
fn maintenance_matches_semantic_on_deletion_heavy_recursive_streams() {
    use dduf::core::upward::maintain::{MaintenanceEngine, Strategy};

    let mut rng = Rng::new(0xD8ED);
    for case in 0..48 {
        let prog = RecProgram::gen(&mut rng);
        let mut db = parse_database(&prog.to_source()).expect("parses");
        let mut old = materialize(&db).expect("stratified");
        let mut engine = MaintenanceEngine::new(&db, &old).expect("mixed strategies");

        // The selection matrix: recursive SCC members run DRed, the
        // non-recursive strata above keep counting.
        let h = Pred::new(prog.scc_head(), 2);
        assert_eq!(engine.strategy(h), Some(Strategy::DRed), "case {case}");
        assert_eq!(
            engine.strategy(Pred::new("cyc", 1)),
            Some(Strategy::Counting),
            "case {case}"
        );

        for step in 0..1 + rng.usize(4) {
            let txn = gen_churn_txn(&mut rng, &db);
            let expected =
                dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Semantic)
                    .expect("semantic");
            for threads in [1usize, 2, 8] {
                let threaded = dduf::core::upward::interpret_with_threads(
                    &db,
                    &old,
                    &txn,
                    UpwardEngine::Semantic,
                    threads,
                )
                .expect("semantic threaded");
                assert_eq!(
                    expected, threaded,
                    "case {case} step {step}: oracle diverges at {threads} threads"
                );
            }
            let got = engine.apply(&db, &txn).expect("maintained");
            assert_eq!(
                got,
                expected,
                "case {case} step {step} ({} events):\n{}",
                txn.events().len(),
                prog.to_source()
            );
            db = txn.apply(&db);
            old = materialize(&db).expect("new state");
            // Full-recompute equality of the carried state, every step.
            assert_eq!(
                dduf::datalog::pretty::derived(&engine.interpretation()),
                dduf::datalog::pretty::derived(&old),
                "case {case} step {step}: maintained extensions drifted"
            );
        }
    }
}

/// The maintained stream's trace fingerprint is deterministic: fresh
/// engines built sequentially and with 2- and 8-worker pools replay the
/// same transaction stream with bit-identical deterministic counters
/// and identical final extensions.
#[test]
fn maintained_stream_fingerprints_are_deterministic() {
    use dduf::core::upward::maintain::MaintenanceEngine;
    use dduf::datalog::eval::pool::Pool;

    let mut rng = Rng::new(0xD8ED2);
    for case in 0..8 {
        let prog = RecProgram::gen(&mut rng);
        let db0 = parse_database(&prog.to_source()).expect("parses");
        let old0 = materialize(&db0).expect("stratified");
        // Pre-generate the stream so every run replays the same one.
        let mut txns = Vec::new();
        let mut db = db0.clone();
        for _ in 0..3 {
            let txn = gen_churn_txn(&mut rng, &db);
            db = txn.apply(&db);
            txns.push(txn);
        }

        let run = |pool: Option<usize>| {
            let mut engine = match pool {
                Some(n) => MaintenanceEngine::new_pooled(&db0, &old0, &Pool::new(n)),
                None => MaintenanceEngine::new(&db0, &old0),
            }
            .expect("engine");
            let mut db = db0.clone();
            let (_, report) = dduf::obs::capture(|| {
                for txn in &txns {
                    engine.apply(&db, txn).expect("maintained");
                    db = txn.apply(&db);
                }
            });
            (
                dduf::datalog::pretty::derived(&engine.interpretation()),
                report.semantic_fingerprint(),
            )
        };

        dduf::datalog::eval::plan::with_planning(true, || {
            let (state, fp) = run(None);
            for threads in [2usize, 8] {
                let (s, f) = run(Some(threads));
                assert_eq!(state, s, "case {case}: state differs with a {threads}-pool");
                assert_eq!(
                    fp, f,
                    "case {case}: trace fingerprint differs with a {threads}-pool"
                );
            }
        });
    }
}

/// The stateful counting engine ([GMS93]) agrees with the semantic
/// oracle across a whole *sequence* of transactions (statefulness is
/// the point: counts must stay correct step after step).
#[test]
fn counting_engine_matches_semantic_over_sequences() {
    let mut rng = Rng::new(0xC0117);
    for case in 0..64 {
        let prog = RandProgram::gen(&mut rng);
        let mut db = parse_database(&prog.to_source()).expect("parses");
        let mut old = materialize(&db).expect("stratified");
        let mut engine =
            dduf::core::upward::counting::CountingEngine::new(&db, &old).expect("non-recursive");
        let steps = 1 + rng.usize(3);
        for step in 0..steps {
            let txn = gen_txn(&mut rng, &db);
            let expected =
                dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Semantic)
                    .expect("semantic");
            let got = engine.apply(&db, &txn).expect("counting");
            assert_eq!(got, expected, "case {case} step {step}");
            db = txn.apply(&db);
            old = materialize(&db).expect("new state");
            // Counts must reflect exactly the live tuples.
            for (pred, _role) in db.program().predicates() {
                if !db.program().is_derived(pred) {
                    continue;
                }
                for t in old.relation(pred).iter() {
                    assert!(
                        engine.count(pred, t) > 0,
                        "case {case} step {step}: zero count for live {pred}{t}"
                    );
                }
            }
        }
    }
}
