//! Property-based differential testing: the incremental upward engine must
//! agree with the semantic (state-diff) oracle on random stratified
//! programs and random transactions — the central correctness property of
//! the upward interpretation (the semantic engine *is* the event
//! definitions (1)/(2) of §3.1).

use dduf::prelude::*;
use proptest::prelude::*;
use std::fmt::Write as _;

const CONSTS: [&str; 4] = ["a", "b", "c", "d"];
const BASES: [&str; 3] = ["b1", "b2", "b3"];

#[derive(Clone, Debug)]
struct RandLit {
    pred: usize,   // index: 0..3 base, 3.. derived of lower layer
    positive: bool,
}

#[derive(Clone, Debug)]
struct RandProgram {
    /// facts[i] = set of constants for base predicate i.
    facts: Vec<Vec<usize>>,
    /// layers[k] = body literals of derived predicate v{k+1}; references
    /// base preds (0..3) and derived preds of strictly lower layers
    /// (3 + j for layer j).
    layers: Vec<Vec<RandLit>>,
}

impl RandProgram {
    fn to_source(&self) -> String {
        let mut src = String::new();
        for (i, cs) in self.facts.iter().enumerate() {
            for &c in cs {
                let _ = writeln!(src, "{}({}).", BASES[i], CONSTS[c]);
            }
        }
        // Declare base preds so empty relations still typecheck.
        for b in BASES {
            let _ = writeln!(src, "#base {b}/1.");
        }
        for (k, body) in self.layers.iter().enumerate() {
            let name = format!("v{}", k + 1);
            let mut lits: Vec<String> = Vec::new();
            // Guarantee allowedness: ensure at least one positive literal
            // by forcing the first literal positive.
            for (j, lit) in body.iter().enumerate() {
                let pname = if lit.pred < 3 {
                    BASES[lit.pred].to_string()
                } else {
                    format!("v{}", lit.pred - 2) // lower layer: 3 -> v1, 4 -> v2
                };
                let positive = lit.positive || j == 0;
                lits.push(if positive {
                    format!("{pname}(X)")
                } else {
                    format!("not {pname}(X)")
                });
            }
            let _ = writeln!(src, "{name}(X) :- {}.", lits.join(", "));
        }
        src
    }
}

fn lit_strategy(layer: usize) -> impl Strategy<Value = RandLit> {
    // Allowed predicate indexes: bases 0..3, derived 3..3+layer.
    (0..3 + layer, proptest::bool::ANY).prop_map(|(pred, positive)| RandLit { pred, positive })
}

fn program_strategy() -> impl Strategy<Value = RandProgram> {
    let facts = proptest::collection::vec(
        proptest::collection::vec(0..CONSTS.len(), 0..5),
        BASES.len(),
    );
    let layers = (1usize..=3).prop_flat_map(|depth| {
        let mut strategies = Vec::new();
        for layer in 0..depth {
            strategies.push(proptest::collection::vec(lit_strategy(layer), 1..4));
        }
        strategies
    });
    (facts, layers).prop_map(|(facts, layers)| RandProgram { facts, layers })
}

fn txn_strategy() -> impl Strategy<Value = Vec<(bool, usize, usize)>> {
    // (insert?, base pred index, constant index)
    proptest::collection::vec(
        (proptest::bool::ANY, 0..BASES.len(), 0..CONSTS.len()),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Engine B (incremental) ≡ engine A (semantic diff) on random
    /// stratified programs and transactions.
    #[test]
    fn incremental_equals_semantic(prog in program_strategy(), txn in txn_strategy()) {
        let db = parse_database(&prog.to_source()).expect("generated program parses");
        let old = materialize(&db).expect("stratified");
        // Drop conflicting events (both +p(c) and -p(c)).
        let mut events = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for (ins, p, c) in txn {
            if seen.insert((p, c)) {
                let kind = if ins { EventKind::Ins } else { EventKind::Del };
                events.push(GroundEvent::new(
                    kind,
                    Pred::new(BASES[p], 1),
                    Tuple::new(vec![Const::sym(CONSTS[c])]),
                ));
            }
        }
        let txn = Transaction::from_events(&db, events).expect("validated");
        let a = dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Semantic)
            .expect("semantic");
        let b = dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Incremental)
            .expect("incremental");
        prop_assert_eq!(a, b);
    }

    /// The upward result matches the definitional diff: applying the
    /// transaction and rematerializing yields exactly old ± events.
    #[test]
    fn events_reconstruct_new_state(prog in program_strategy(), txn in txn_strategy()) {
        let db = parse_database(&prog.to_source()).expect("parses");
        let old = materialize(&db).expect("stratified");
        let mut events = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for (ins, p, c) in txn {
            if seen.insert((p, c)) {
                let kind = if ins { EventKind::Ins } else { EventKind::Del };
                events.push(GroundEvent::new(
                    kind,
                    Pred::new(BASES[p], 1),
                    Tuple::new(vec![Const::sym(CONSTS[c])]),
                ));
            }
        }
        let txn = Transaction::from_events(&db, events).expect("validated");
        let res = dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Incremental)
            .expect("incremental");
        let new = materialize(&txn.apply(&db)).expect("new state");
        for (pred, _role) in db.program().predicates() {
            if !db.program().is_derived(pred) { continue; }
            let expected = new.relation(pred);
            let reconstructed = old
                .relation(pred)
                .difference(res.derived.relation(EventKind::Del, pred))
                .union(res.derived.relation(EventKind::Ins, pred));
            prop_assert_eq!(
                expected, &reconstructed,
                "mismatch on {}", pred
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The stateful counting engine ([GMS93]) agrees with the semantic
    /// oracle across a whole *sequence* of transactions (statefulness is
    /// the point: counts must stay correct step after step).
    #[test]
    fn counting_engine_matches_semantic_over_sequences(
        prog in program_strategy(),
        steps in proptest::collection::vec(txn_strategy(), 1..4),
    ) {
        let mut db = parse_database(&prog.to_source()).expect("parses");
        let mut old = materialize(&db).expect("stratified");
        let mut engine =
            dduf::core::upward::counting::CountingEngine::new(&db, &old).expect("non-recursive");
        for step in steps {
            let mut events = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            for (ins, p, c) in step {
                if seen.insert((p, c)) {
                    let kind = if ins { EventKind::Ins } else { EventKind::Del };
                    events.push(GroundEvent::new(
                        kind,
                        Pred::new(BASES[p], 1),
                        Tuple::new(vec![Const::sym(CONSTS[c])]),
                    ));
                }
            }
            let txn = Transaction::from_events(&db, events).expect("validated");
            let expected =
                dduf::core::upward::interpret_with(&db, &old, &txn, UpwardEngine::Semantic)
                    .expect("semantic");
            let got = engine.apply(&db, &txn).expect("counting");
            prop_assert_eq!(&got, &expected);
            db = txn.apply(&db);
            old = materialize(&db).expect("new state");
            // Counts must reflect exactly the live tuples.
            for (pred, _role) in db.program().predicates() {
                if !db.program().is_derived(pred) { continue; }
                for t in old.relation(pred).iter() {
                    prop_assert!(engine.count(pred, t) > 0, "zero count for live {}{}", pred, t);
                }
            }
        }
    }
}
