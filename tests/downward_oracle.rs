//! Downward-oracle fuzzing: on random view-tower workloads, every
//! alternative the downward interpretation proposes must — when committed
//! through the normal `UpdateProcessor` upward path — actually realize
//! the requested event (the round-trip of the paper's intro figure), and
//! the trace's `alternatives` counter must equal the result length.
//!
//! Deterministic fuzz loops over the in-tree PRNG, like engines_equiv.

use dduf::core::rng::Rng;
use dduf::core::testkit::{tower_db, TowerShape};
use dduf::prelude::*;

fn random_shape(rng: &mut Rng) -> TowerShape {
    TowerShape {
        depth: 1 + rng.usize(3),
        facts_per_level: 1 + rng.usize(3),
        with_negation: rng.bool(),
    }
}

/// One random request against a tower: delete a held view fact, or
/// insert a view fact for a fresh constant (which forces base inserts
/// down the whole tower).
fn random_request(rng: &mut Rng, shape: TowerShape) -> (String, EventKind, Pred, Tuple) {
    let level = 1 + rng.usize(shape.depth);
    let pred = Pred::new(&format!("v{level}"), 1);
    if rng.bool() {
        let c = format!("c{}", rng.usize(shape.facts_per_level));
        let tuple = Tuple::new(vec![Const::sym(&c)]);
        (format!("-v{level}({c})."), EventKind::Del, pred, tuple)
    } else {
        let tuple = Tuple::new(vec![Const::sym("z")]);
        (format!("+v{level}(z)."), EventKind::Ins, pred, tuple)
    }
}

#[test]
fn every_alternative_realizes_the_event() {
    let mut rng = Rng::new(0xD0A11);
    for case in 0..40 {
        let shape = random_shape(&mut rng);
        let db = tower_db(shape);
        let old = materialize(&db).expect("tower is stratified");
        let (src, kind, pred, tuple) = random_request(&mut rng, shape);
        let req = Request::parse(&src).expect("request parses");
        let opts = DownwardOptions::default();

        let (res, report) = dduf::obs::capture(|| {
            dduf::core::downward::interpret_with(&db, &old, &req, &opts).expect("translates")
        });
        assert!(
            !res.alternatives.is_empty() || !res.already_satisfied.is_empty(),
            "case {case}: request {src} has no translation and is not already satisfied"
        );

        // The trace is the result: the recorded `alternatives` counter is
        // exactly the number of alternatives returned (retry runs record
        // 0 first, so the aggregate still matches the final answer).
        assert_eq!(
            report.counter("downward.translate", "", "alternatives"),
            res.alternatives.len() as u64,
            "case {case}: trace disagrees with result for {src}"
        );
        assert!(
            report.counter("downward.translate", "", "nodes") > 0,
            "case {case}: search recorded no nodes for {src}"
        );

        // Captured twice, the translation trace is bit-identical.
        let (_, again) = dduf::obs::capture(|| {
            dduf::core::downward::interpret_with(&db, &old, &req, &opts).expect("translates")
        });
        assert_eq!(
            report.semantic_fingerprint(),
            again.semantic_fingerprint(),
            "case {case}: downward trace is not deterministic for {src}"
        );

        for (i, alt) in res.alternatives.iter().enumerate() {
            // The replay oracle agrees...
            assert!(
                dduf::core::downward::verify(&db, &old, &req, alt).expect("verifies"),
                "case {case}: alternative {i} of {src} fails verify()"
            );
            // ...and so does an actual commit through a fresh processor.
            let mut proc = UpdateProcessor::new(tower_db(shape)).expect("fresh processor");
            let txn = alt.to_transaction(proc.database()).expect("transaction");
            proc.commit(&txn).expect("commits");
            let realized = proc.state().relation(pred).contains(&tuple);
            let expected = kind == EventKind::Ins;
            assert_eq!(
                realized, expected,
                "case {case}: alternative {i} of {src} did not realize the event"
            );
        }
    }
}
