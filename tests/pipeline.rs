//! Cross-crate integration: full update-processing pipelines combining
//! upward and downward problems (§5.3), long transaction streams, and the
//! three derived-predicate roles interacting in one database.

use dduf::core::problems::condition_prevention::PreventKinds;
use dduf::core::problems::ic_maintenance::MaintenanceOutcome;
use dduf::core::testkit;
use dduf::prelude::*;

/// A library lending system exercising all three roles at once: a view
/// (`borrowed_by`), two constraints, and a monitored condition
/// (`overdue_alert`).
fn library_db() -> Database {
    parse_database(
        "#cond overdue_alert/1.
         member(ana). member(ben).
         book(rust_book). book(dune). book(sicp).
         loan(rust_book, ana). overdue(rust_book).
         borrowed_by(B, M) :- loan(B, M).
         available(B) :- book(B), not on_loan(B).
         on_loan(B) :- loan(B, _).
         overdue_alert(M) :- loan(B, M), overdue(B).
         :- loan(B, M), not member(M).
         :- loan(B, M), not book(B).",
    )
    .unwrap()
}

#[test]
fn combined_upward_set_interpretation() {
    // §5.3: "combine materialized view maintenance, integrity constraints
    // checking and condition monitoring by upward interpreting the set".
    let db = library_db();
    let proc = UpdateProcessor::new(db).unwrap();
    let mut store =
        MaterializedViewStore::materialize(proc.database().program(), proc.interpretation());
    let txn = proc
        .transaction("+loan(dune, ben). +overdue(dune).")
        .unwrap();

    // One upward pass answers all three problems.
    let check = proc.check_integrity(&txn).unwrap();
    assert!(check.accepts());
    let conditions = proc.monitor_conditions(&txn).unwrap();
    assert_eq!(
        conditions.activated[&Pred::new("overdue_alert", 1)],
        vec![Tuple::new(vec![Const::sym("ben")])]
    );
    let report = proc.maintain_views(&txn, &mut store).unwrap();
    assert!(report.delta.insertions >= 1); // borrowed_by(dune, ben)
}

#[test]
fn view_update_then_check_then_commit() {
    let db = library_db();
    let mut proc = UpdateProcessor::new(db).unwrap();
    // Request: make sicp borrowed by ana.
    let req = Request::new().achieve(
        EventKind::Ins,
        Atom::ground("borrowed_by", vec![Const::sym("sicp"), Const::sym("ana")]),
    );
    let res = proc.view_update_checked(&req).unwrap();
    assert!(!res.alternatives.is_empty());
    let alt = res.alternatives[0].clone();
    proc.commit_alternative(&alt).unwrap();
    assert!(proc.state().holds(
        Pred::new("borrowed_by", 2),
        &Tuple::new(vec![Const::sym("sicp"), Const::sym("ana")])
    ));
    // Committed state remains consistent.
    let fresh = materialize(proc.database()).unwrap();
    assert!(fresh
        .relation(proc.database().program().global_ic().unwrap())
        .is_empty());
}

#[test]
fn view_update_for_unknown_member_needs_membership() {
    let db = library_db();
    let proc = UpdateProcessor::new(db).unwrap();
    // cara is not a member: plain translation would violate ic; the
    // integrity-maintaining translation must also insert member(cara).
    let req = Request::new().achieve(
        EventKind::Ins,
        Atom::ground("borrowed_by", vec![Const::sym("dune"), Const::sym("cara")]),
    );
    let safe = proc.view_update_with_integrity(&req).unwrap();
    assert!(!safe.alternatives.is_empty());
    for alt in &safe.alternatives {
        let s = alt.to_do.to_string();
        assert!(s.contains("+loan(dune, cara)"), "{s}");
        assert!(s.contains("+member(cara)"), "{s}");
    }
}

#[test]
fn maintenance_stream_stays_consistent() {
    // A longer random-ish stream over the employment database with all
    // problems engaged each step.
    let db = testkit::employment_db_with_condition();
    let mut proc = UpdateProcessor::new(db).unwrap();
    let mut store =
        MaterializedViewStore::materialize(proc.database().program(), proc.interpretation());
    let stream = [
        "+la(maria). +u_benefit(maria).",
        "+works(maria).",
        "-u_benefit(maria).",
        "+la(pere). +u_benefit(pere).",
        "-works(maria). +u_benefit(maria).",
        "-la(dolors).",
    ];
    for (i, src) in stream.iter().enumerate() {
        let txn = proc.transaction(src).unwrap();
        let check = proc.check_integrity(&txn).unwrap();
        assert!(check.accepts(), "step {i}: {src} violates integrity");
        proc.maintain_views(&txn, &mut store).unwrap();
        proc.commit(&txn).unwrap();
        assert!(
            store.consistent_with(proc.interpretation()),
            "store diverged at step {i}"
        );
        let fresh = materialize(proc.database()).unwrap();
        assert_eq!(proc.interpretation(), &fresh, "interp stale at step {i}");
    }
}

#[test]
fn downward_then_upward_chain() {
    // §5.3: "the result of the downward interpretation is the same as the
    // starting-point of the upward interpretation" — chain them.
    let db = library_db();
    let proc = UpdateProcessor::new(db).unwrap();
    let req = Request::new().achieve(
        EventKind::Del,
        Atom::ground("overdue_alert", vec![Const::sym("ana")]),
    );
    let res = proc.translate_view_update(&req).unwrap();
    assert!(!res.alternatives.is_empty());
    for alt in &res.alternatives {
        let txn = alt.to_transaction(proc.database()).unwrap();
        let up = proc.upward(&txn).unwrap();
        assert!(up.derived.contains(&GroundEvent::del(
            Pred::new("overdue_alert", 1),
            Tuple::new(vec![Const::sym("ana")])
        )));
    }
}

#[test]
fn prevent_condition_while_updating() {
    let db = library_db();
    let proc = UpdateProcessor::new(db).unwrap();
    // Lend the (overdue-flagged) book dune to ben without raising an
    // overdue alert for him: impossible unless overdue(dune) is cleared.
    let txn = proc
        .transaction("+loan(dune, ben). +overdue(dune).")
        .unwrap();
    let res = proc
        .prevent_condition_activation(
            &txn,
            Pred::new("overdue_alert", 1),
            PreventKinds::Activation,
        )
        .unwrap();
    // The fixed transaction inserts overdue(dune) and the loan, so the
    // alert is unavoidable: no resulting transaction exists.
    assert!(res.alternatives.is_empty());

    // Without the overdue flag it goes through.
    let txn2 = proc.transaction("+loan(dune, ben).").unwrap();
    let res2 = proc
        .prevent_condition_activation(
            &txn2,
            Pred::new("overdue_alert", 1),
            PreventKinds::Activation,
        )
        .unwrap();
    assert!(!res2.alternatives.is_empty());
}

#[test]
fn integrity_maintenance_full_cycle() {
    let db = library_db();
    let mut proc = UpdateProcessor::new(db).unwrap();
    let txn = proc.transaction("+loan(dune, zoe).").unwrap(); // zoe not a member
    assert!(!proc.check_integrity(&txn).unwrap().accepts());
    let MaintenanceOutcome::Resulting(res) = proc.maintain_integrity(&txn).unwrap() else {
        panic!("expected resulting transactions");
    };
    assert!(!res.alternatives.is_empty());
    let alt = res
        .alternatives
        .iter()
        .find(|a| a.to_do.to_string().contains("+member(zoe)"))
        .expect("membership repair offered");
    proc.commit_alternative(alt).unwrap();
    let fresh = materialize(proc.database()).unwrap();
    assert!(fresh
        .relation(proc.database().program().global_ic().unwrap())
        .is_empty());
}

#[test]
fn per_predicate_domains_restrict_downward_instantiation() {
    // Only declared persons may enter labour age; the open view-update
    // request must not invent translations over book titles etc.
    let db = parse_database(
        "#domain la/1 {ana, ben}.
         #domain works/1 {ana, ben}.
         #domain u_benefit/1 {ana, ben}.
         book(dune). la(ana). works(ana).
         unemp(X) :- la(X), not works(X).",
    )
    .unwrap();
    let proc = UpdateProcessor::new(db).unwrap();
    let req = Request::new().achieve(EventKind::Ins, Atom::new("unemp", vec![Term::var("X")]));
    let res = proc.translate_view_update(&req).unwrap();
    assert!(!res.alternatives.is_empty());
    for alt in &res.alternatives {
        for e in alt.to_do.iter() {
            let c = e.tuple[0];
            assert!(
                c == Const::sym("ana") || c == Const::sym("ben"),
                "alternative {alt} leaves the declared domain"
            );
        }
    }
    // ben is the fresh candidate: +la(ben) (with works(ben) avoided).
    assert!(res
        .alternatives
        .iter()
        .any(|a| a.to_do.to_string() == "{+la(ben)}"));
}

#[test]
fn rule_update_preserves_domains() {
    let db = parse_database(
        "#domain la/1 {ana}.
         la(ana).
         unemp(X) :- la(X), not works(X).",
    )
    .unwrap();
    let mut proc = UpdateProcessor::new(db).unwrap();
    proc.add_rule({
        let out = dduf::datalog::parser::parse_program("v(X) :- la(X).").unwrap();
        out.program.rules()[0].clone()
    })
    .unwrap();
    let dom = proc
        .database()
        .program()
        .pred_domain(Pred::new("la", 1))
        .expect("domain survives rule updates");
    assert_eq!(dom.len(), 1);
}
